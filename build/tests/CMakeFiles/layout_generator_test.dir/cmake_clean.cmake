file(REMOVE_RECURSE
  "CMakeFiles/layout_generator_test.dir/layout/layout_generator_test.cc.o"
  "CMakeFiles/layout_generator_test.dir/layout/layout_generator_test.cc.o.d"
  "layout_generator_test"
  "layout_generator_test.pdb"
  "layout_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
