file(REMOVE_RECURSE
  "CMakeFiles/cross_planner_test.dir/integration/cross_planner_test.cc.o"
  "CMakeFiles/cross_planner_test.dir/integration/cross_planner_test.cc.o.d"
  "cross_planner_test"
  "cross_planner_test.pdb"
  "cross_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
