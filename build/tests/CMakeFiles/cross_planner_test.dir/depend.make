# Empty dependencies file for cross_planner_test.
# This may be replaced when dependencies are built.
