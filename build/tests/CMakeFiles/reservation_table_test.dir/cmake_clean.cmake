file(REMOVE_RECURSE
  "CMakeFiles/reservation_table_test.dir/core/reservation_table_test.cc.o"
  "CMakeFiles/reservation_table_test.dir/core/reservation_table_test.cc.o.d"
  "reservation_table_test"
  "reservation_table_test.pdb"
  "reservation_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reservation_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
