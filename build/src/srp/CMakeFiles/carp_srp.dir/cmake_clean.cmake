file(REMOVE_RECURSE
  "CMakeFiles/carp_srp.dir/intra_strip_planner.cc.o"
  "CMakeFiles/carp_srp.dir/intra_strip_planner.cc.o.d"
  "CMakeFiles/carp_srp.dir/route_conversion.cc.o"
  "CMakeFiles/carp_srp.dir/route_conversion.cc.o.d"
  "CMakeFiles/carp_srp.dir/segment_index.cc.o"
  "CMakeFiles/carp_srp.dir/segment_index.cc.o.d"
  "CMakeFiles/carp_srp.dir/segment_store.cc.o"
  "CMakeFiles/carp_srp.dir/segment_store.cc.o.d"
  "CMakeFiles/carp_srp.dir/srp_planner.cc.o"
  "CMakeFiles/carp_srp.dir/srp_planner.cc.o.d"
  "CMakeFiles/carp_srp.dir/strip_graph.cc.o"
  "CMakeFiles/carp_srp.dir/strip_graph.cc.o.d"
  "libcarp_srp.a"
  "libcarp_srp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carp_srp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
