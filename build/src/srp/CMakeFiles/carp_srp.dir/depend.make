# Empty dependencies file for carp_srp.
# This may be replaced when dependencies are built.
