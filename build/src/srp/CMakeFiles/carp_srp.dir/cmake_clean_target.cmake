file(REMOVE_RECURSE
  "libcarp_srp.a"
)
