
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/srp/intra_strip_planner.cc" "src/srp/CMakeFiles/carp_srp.dir/intra_strip_planner.cc.o" "gcc" "src/srp/CMakeFiles/carp_srp.dir/intra_strip_planner.cc.o.d"
  "/root/repo/src/srp/route_conversion.cc" "src/srp/CMakeFiles/carp_srp.dir/route_conversion.cc.o" "gcc" "src/srp/CMakeFiles/carp_srp.dir/route_conversion.cc.o.d"
  "/root/repo/src/srp/segment_index.cc" "src/srp/CMakeFiles/carp_srp.dir/segment_index.cc.o" "gcc" "src/srp/CMakeFiles/carp_srp.dir/segment_index.cc.o.d"
  "/root/repo/src/srp/segment_store.cc" "src/srp/CMakeFiles/carp_srp.dir/segment_store.cc.o" "gcc" "src/srp/CMakeFiles/carp_srp.dir/segment_store.cc.o.d"
  "/root/repo/src/srp/srp_planner.cc" "src/srp/CMakeFiles/carp_srp.dir/srp_planner.cc.o" "gcc" "src/srp/CMakeFiles/carp_srp.dir/srp_planner.cc.o.d"
  "/root/repo/src/srp/strip_graph.cc" "src/srp/CMakeFiles/carp_srp.dir/strip_graph.cc.o" "gcc" "src/srp/CMakeFiles/carp_srp.dir/strip_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/carp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/carp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/carp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
