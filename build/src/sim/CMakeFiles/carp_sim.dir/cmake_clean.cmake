file(REMOVE_RECURSE
  "CMakeFiles/carp_sim.dir/ascii_renderer.cc.o"
  "CMakeFiles/carp_sim.dir/ascii_renderer.cc.o.d"
  "CMakeFiles/carp_sim.dir/assignment.cc.o"
  "CMakeFiles/carp_sim.dir/assignment.cc.o.d"
  "CMakeFiles/carp_sim.dir/event_trace.cc.o"
  "CMakeFiles/carp_sim.dir/event_trace.cc.o.d"
  "CMakeFiles/carp_sim.dir/experiment_runner.cc.o"
  "CMakeFiles/carp_sim.dir/experiment_runner.cc.o.d"
  "CMakeFiles/carp_sim.dir/robot_pool.cc.o"
  "CMakeFiles/carp_sim.dir/robot_pool.cc.o.d"
  "CMakeFiles/carp_sim.dir/simulator.cc.o"
  "CMakeFiles/carp_sim.dir/simulator.cc.o.d"
  "libcarp_sim.a"
  "libcarp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
