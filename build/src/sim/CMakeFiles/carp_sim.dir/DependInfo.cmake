
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ascii_renderer.cc" "src/sim/CMakeFiles/carp_sim.dir/ascii_renderer.cc.o" "gcc" "src/sim/CMakeFiles/carp_sim.dir/ascii_renderer.cc.o.d"
  "/root/repo/src/sim/assignment.cc" "src/sim/CMakeFiles/carp_sim.dir/assignment.cc.o" "gcc" "src/sim/CMakeFiles/carp_sim.dir/assignment.cc.o.d"
  "/root/repo/src/sim/event_trace.cc" "src/sim/CMakeFiles/carp_sim.dir/event_trace.cc.o" "gcc" "src/sim/CMakeFiles/carp_sim.dir/event_trace.cc.o.d"
  "/root/repo/src/sim/experiment_runner.cc" "src/sim/CMakeFiles/carp_sim.dir/experiment_runner.cc.o" "gcc" "src/sim/CMakeFiles/carp_sim.dir/experiment_runner.cc.o.d"
  "/root/repo/src/sim/robot_pool.cc" "src/sim/CMakeFiles/carp_sim.dir/robot_pool.cc.o" "gcc" "src/sim/CMakeFiles/carp_sim.dir/robot_pool.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/carp_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/carp_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/carp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/carp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/srp/CMakeFiles/carp_srp.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/carp_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/carp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/carp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/carp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
