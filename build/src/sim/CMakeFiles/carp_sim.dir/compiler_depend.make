# Empty compiler generated dependencies file for carp_sim.
# This may be replaced when dependencies are built.
