file(REMOVE_RECURSE
  "libcarp_sim.a"
)
