file(REMOVE_RECURSE
  "libcarp_geometry.a"
)
