# Empty compiler generated dependencies file for carp_geometry.
# This may be replaced when dependencies are built.
