file(REMOVE_RECURSE
  "CMakeFiles/carp_geometry.dir/intersection.cc.o"
  "CMakeFiles/carp_geometry.dir/intersection.cc.o.d"
  "CMakeFiles/carp_geometry.dir/rotation.cc.o"
  "CMakeFiles/carp_geometry.dir/rotation.cc.o.d"
  "libcarp_geometry.a"
  "libcarp_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carp_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
