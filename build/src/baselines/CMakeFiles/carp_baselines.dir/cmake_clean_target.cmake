file(REMOVE_RECURSE
  "libcarp_baselines.a"
)
