file(REMOVE_RECURSE
  "CMakeFiles/carp_baselines.dir/acp_planner.cc.o"
  "CMakeFiles/carp_baselines.dir/acp_planner.cc.o.d"
  "CMakeFiles/carp_baselines.dir/cbs.cc.o"
  "CMakeFiles/carp_baselines.dir/cbs.cc.o.d"
  "CMakeFiles/carp_baselines.dir/planner_factory.cc.o"
  "CMakeFiles/carp_baselines.dir/planner_factory.cc.o.d"
  "CMakeFiles/carp_baselines.dir/rp_planner.cc.o"
  "CMakeFiles/carp_baselines.dir/rp_planner.cc.o.d"
  "CMakeFiles/carp_baselines.dir/sap_planner.cc.o"
  "CMakeFiles/carp_baselines.dir/sap_planner.cc.o.d"
  "CMakeFiles/carp_baselines.dir/twp_planner.cc.o"
  "CMakeFiles/carp_baselines.dir/twp_planner.cc.o.d"
  "libcarp_baselines.a"
  "libcarp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
