
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/acp_planner.cc" "src/baselines/CMakeFiles/carp_baselines.dir/acp_planner.cc.o" "gcc" "src/baselines/CMakeFiles/carp_baselines.dir/acp_planner.cc.o.d"
  "/root/repo/src/baselines/cbs.cc" "src/baselines/CMakeFiles/carp_baselines.dir/cbs.cc.o" "gcc" "src/baselines/CMakeFiles/carp_baselines.dir/cbs.cc.o.d"
  "/root/repo/src/baselines/planner_factory.cc" "src/baselines/CMakeFiles/carp_baselines.dir/planner_factory.cc.o" "gcc" "src/baselines/CMakeFiles/carp_baselines.dir/planner_factory.cc.o.d"
  "/root/repo/src/baselines/rp_planner.cc" "src/baselines/CMakeFiles/carp_baselines.dir/rp_planner.cc.o" "gcc" "src/baselines/CMakeFiles/carp_baselines.dir/rp_planner.cc.o.d"
  "/root/repo/src/baselines/sap_planner.cc" "src/baselines/CMakeFiles/carp_baselines.dir/sap_planner.cc.o" "gcc" "src/baselines/CMakeFiles/carp_baselines.dir/sap_planner.cc.o.d"
  "/root/repo/src/baselines/twp_planner.cc" "src/baselines/CMakeFiles/carp_baselines.dir/twp_planner.cc.o" "gcc" "src/baselines/CMakeFiles/carp_baselines.dir/twp_planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/carp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/srp/CMakeFiles/carp_srp.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/carp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/carp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
