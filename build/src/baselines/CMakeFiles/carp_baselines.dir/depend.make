# Empty dependencies file for carp_baselines.
# This may be replaced when dependencies are built.
