
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival_profile.cc" "src/workload/CMakeFiles/carp_workload.dir/arrival_profile.cc.o" "gcc" "src/workload/CMakeFiles/carp_workload.dir/arrival_profile.cc.o.d"
  "/root/repo/src/workload/request_stream.cc" "src/workload/CMakeFiles/carp_workload.dir/request_stream.cc.o" "gcc" "src/workload/CMakeFiles/carp_workload.dir/request_stream.cc.o.d"
  "/root/repo/src/workload/scenario.cc" "src/workload/CMakeFiles/carp_workload.dir/scenario.cc.o" "gcc" "src/workload/CMakeFiles/carp_workload.dir/scenario.cc.o.d"
  "/root/repo/src/workload/task_generator.cc" "src/workload/CMakeFiles/carp_workload.dir/task_generator.cc.o" "gcc" "src/workload/CMakeFiles/carp_workload.dir/task_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/carp_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/carp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/carp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/carp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
