file(REMOVE_RECURSE
  "CMakeFiles/carp_workload.dir/arrival_profile.cc.o"
  "CMakeFiles/carp_workload.dir/arrival_profile.cc.o.d"
  "CMakeFiles/carp_workload.dir/request_stream.cc.o"
  "CMakeFiles/carp_workload.dir/request_stream.cc.o.d"
  "CMakeFiles/carp_workload.dir/scenario.cc.o"
  "CMakeFiles/carp_workload.dir/scenario.cc.o.d"
  "CMakeFiles/carp_workload.dir/task_generator.cc.o"
  "CMakeFiles/carp_workload.dir/task_generator.cc.o.d"
  "libcarp_workload.a"
  "libcarp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
