file(REMOVE_RECURSE
  "libcarp_workload.a"
)
