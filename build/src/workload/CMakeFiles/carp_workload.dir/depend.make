# Empty dependencies file for carp_workload.
# This may be replaced when dependencies are built.
