file(REMOVE_RECURSE
  "CMakeFiles/carp_common.dir/logging.cc.o"
  "CMakeFiles/carp_common.dir/logging.cc.o.d"
  "CMakeFiles/carp_common.dir/rng.cc.o"
  "CMakeFiles/carp_common.dir/rng.cc.o.d"
  "CMakeFiles/carp_common.dir/stats.cc.o"
  "CMakeFiles/carp_common.dir/stats.cc.o.d"
  "CMakeFiles/carp_common.dir/table_writer.cc.o"
  "CMakeFiles/carp_common.dir/table_writer.cc.o.d"
  "libcarp_common.a"
  "libcarp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
