# Empty compiler generated dependencies file for carp_common.
# This may be replaced when dependencies are built.
