file(REMOVE_RECURSE
  "libcarp_common.a"
)
