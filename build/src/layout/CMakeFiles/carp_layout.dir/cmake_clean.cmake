file(REMOVE_RECURSE
  "CMakeFiles/carp_layout.dir/layout_generator.cc.o"
  "CMakeFiles/carp_layout.dir/layout_generator.cc.o.d"
  "CMakeFiles/carp_layout.dir/layout_io.cc.o"
  "CMakeFiles/carp_layout.dir/layout_io.cc.o.d"
  "CMakeFiles/carp_layout.dir/presets.cc.o"
  "CMakeFiles/carp_layout.dir/presets.cc.o.d"
  "libcarp_layout.a"
  "libcarp_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carp_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
