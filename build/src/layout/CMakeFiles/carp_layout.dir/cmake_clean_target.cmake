file(REMOVE_RECURSE
  "libcarp_layout.a"
)
