# Empty dependencies file for carp_layout.
# This may be replaced when dependencies are built.
