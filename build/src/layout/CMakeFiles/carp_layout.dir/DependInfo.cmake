
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/layout_generator.cc" "src/layout/CMakeFiles/carp_layout.dir/layout_generator.cc.o" "gcc" "src/layout/CMakeFiles/carp_layout.dir/layout_generator.cc.o.d"
  "/root/repo/src/layout/layout_io.cc" "src/layout/CMakeFiles/carp_layout.dir/layout_io.cc.o" "gcc" "src/layout/CMakeFiles/carp_layout.dir/layout_io.cc.o.d"
  "/root/repo/src/layout/presets.cc" "src/layout/CMakeFiles/carp_layout.dir/presets.cc.o" "gcc" "src/layout/CMakeFiles/carp_layout.dir/presets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/carp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/carp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/carp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
