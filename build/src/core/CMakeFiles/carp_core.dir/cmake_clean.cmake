file(REMOVE_RECURSE
  "CMakeFiles/carp_core.dir/batch_planner.cc.o"
  "CMakeFiles/carp_core.dir/batch_planner.cc.o.d"
  "CMakeFiles/carp_core.dir/collision.cc.o"
  "CMakeFiles/carp_core.dir/collision.cc.o.d"
  "CMakeFiles/carp_core.dir/reservation_table.cc.o"
  "CMakeFiles/carp_core.dir/reservation_table.cc.o.d"
  "CMakeFiles/carp_core.dir/route.cc.o"
  "CMakeFiles/carp_core.dir/route.cc.o.d"
  "CMakeFiles/carp_core.dir/spacetime_astar.cc.o"
  "CMakeFiles/carp_core.dir/spacetime_astar.cc.o.d"
  "CMakeFiles/carp_core.dir/spatial_paths.cc.o"
  "CMakeFiles/carp_core.dir/spatial_paths.cc.o.d"
  "CMakeFiles/carp_core.dir/warehouse.cc.o"
  "CMakeFiles/carp_core.dir/warehouse.cc.o.d"
  "libcarp_core.a"
  "libcarp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
