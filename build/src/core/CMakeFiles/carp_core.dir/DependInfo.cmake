
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch_planner.cc" "src/core/CMakeFiles/carp_core.dir/batch_planner.cc.o" "gcc" "src/core/CMakeFiles/carp_core.dir/batch_planner.cc.o.d"
  "/root/repo/src/core/collision.cc" "src/core/CMakeFiles/carp_core.dir/collision.cc.o" "gcc" "src/core/CMakeFiles/carp_core.dir/collision.cc.o.d"
  "/root/repo/src/core/reservation_table.cc" "src/core/CMakeFiles/carp_core.dir/reservation_table.cc.o" "gcc" "src/core/CMakeFiles/carp_core.dir/reservation_table.cc.o.d"
  "/root/repo/src/core/route.cc" "src/core/CMakeFiles/carp_core.dir/route.cc.o" "gcc" "src/core/CMakeFiles/carp_core.dir/route.cc.o.d"
  "/root/repo/src/core/spacetime_astar.cc" "src/core/CMakeFiles/carp_core.dir/spacetime_astar.cc.o" "gcc" "src/core/CMakeFiles/carp_core.dir/spacetime_astar.cc.o.d"
  "/root/repo/src/core/spatial_paths.cc" "src/core/CMakeFiles/carp_core.dir/spatial_paths.cc.o" "gcc" "src/core/CMakeFiles/carp_core.dir/spatial_paths.cc.o.d"
  "/root/repo/src/core/warehouse.cc" "src/core/CMakeFiles/carp_core.dir/warehouse.cc.o" "gcc" "src/core/CMakeFiles/carp_core.dir/warehouse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/carp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/carp_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
