# Empty dependencies file for carp_core.
# This may be replaced when dependencies are built.
