file(REMOVE_RECURSE
  "libcarp_core.a"
)
