file(REMOVE_RECURSE
  "CMakeFiles/custom_layout.dir/custom_layout.cpp.o"
  "CMakeFiles/custom_layout.dir/custom_layout.cpp.o.d"
  "custom_layout"
  "custom_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
