# Empty dependencies file for custom_layout.
# This may be replaced when dependencies are built.
