# Empty dependencies file for warehouse_day.
# This may be replaced when dependencies are built.
