file(REMOVE_RECURSE
  "CMakeFiles/warehouse_day.dir/warehouse_day.cpp.o"
  "CMakeFiles/warehouse_day.dir/warehouse_day.cpp.o.d"
  "warehouse_day"
  "warehouse_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
