file(REMOVE_RECURSE
  "CMakeFiles/fig20_mc_w2.dir/fig20_mc_w2.cc.o"
  "CMakeFiles/fig20_mc_w2.dir/fig20_mc_w2.cc.o.d"
  "fig20_mc_w2"
  "fig20_mc_w2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_mc_w2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
