# Empty dependencies file for fig20_mc_w2.
# This may be replaced when dependencies are built.
