file(REMOVE_RECURSE
  "CMakeFiles/micro_spacetime_astar.dir/micro_spacetime_astar.cc.o"
  "CMakeFiles/micro_spacetime_astar.dir/micro_spacetime_astar.cc.o.d"
  "micro_spacetime_astar"
  "micro_spacetime_astar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_spacetime_astar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
