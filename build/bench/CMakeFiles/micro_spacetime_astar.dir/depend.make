# Empty dependencies file for micro_spacetime_astar.
# This may be replaced when dependencies are built.
