file(REMOVE_RECURSE
  "CMakeFiles/fig22_indexing.dir/fig22_indexing.cc.o"
  "CMakeFiles/fig22_indexing.dir/fig22_indexing.cc.o.d"
  "fig22_indexing"
  "fig22_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
