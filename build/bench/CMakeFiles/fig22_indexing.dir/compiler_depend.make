# Empty compiler generated dependencies file for fig22_indexing.
# This may be replaced when dependencies are built.
