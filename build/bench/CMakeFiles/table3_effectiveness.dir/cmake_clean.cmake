file(REMOVE_RECURSE
  "CMakeFiles/table3_effectiveness.dir/table3_effectiveness.cc.o"
  "CMakeFiles/table3_effectiveness.dir/table3_effectiveness.cc.o.d"
  "table3_effectiveness"
  "table3_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
