# Empty compiler generated dependencies file for table2_strip_extraction.
# This may be replaced when dependencies are built.
