file(REMOVE_RECURSE
  "CMakeFiles/table2_strip_extraction.dir/table2_strip_extraction.cc.o"
  "CMakeFiles/table2_strip_extraction.dir/table2_strip_extraction.cc.o.d"
  "table2_strip_extraction"
  "table2_strip_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_strip_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
