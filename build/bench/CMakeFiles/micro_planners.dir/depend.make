# Empty dependencies file for micro_planners.
# This may be replaced when dependencies are built.
