
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_planners.cc" "bench/CMakeFiles/micro_planners.dir/micro_planners.cc.o" "gcc" "bench/CMakeFiles/micro_planners.dir/micro_planners.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/carp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/carp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/srp/CMakeFiles/carp_srp.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/carp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/carp_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/carp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/carp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/carp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
