# Empty dependencies file for fig17_tc_w2.
# This may be replaced when dependencies are built.
