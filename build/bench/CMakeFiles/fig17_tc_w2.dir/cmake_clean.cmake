file(REMOVE_RECURSE
  "CMakeFiles/fig17_tc_w2.dir/fig17_tc_w2.cc.o"
  "CMakeFiles/fig17_tc_w2.dir/fig17_tc_w2.cc.o.d"
  "fig17_tc_w2"
  "fig17_tc_w2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_tc_w2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
