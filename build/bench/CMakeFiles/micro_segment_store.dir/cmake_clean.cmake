file(REMOVE_RECURSE
  "CMakeFiles/micro_segment_store.dir/micro_segment_store.cc.o"
  "CMakeFiles/micro_segment_store.dir/micro_segment_store.cc.o.d"
  "micro_segment_store"
  "micro_segment_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_segment_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
