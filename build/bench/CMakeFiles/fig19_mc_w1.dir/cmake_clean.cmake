file(REMOVE_RECURSE
  "CMakeFiles/fig19_mc_w1.dir/fig19_mc_w1.cc.o"
  "CMakeFiles/fig19_mc_w1.dir/fig19_mc_w1.cc.o.d"
  "fig19_mc_w1"
  "fig19_mc_w1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_mc_w1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
