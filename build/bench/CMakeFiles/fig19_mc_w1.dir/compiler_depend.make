# Empty compiler generated dependencies file for fig19_mc_w1.
# This may be replaced when dependencies are built.
