file(REMOVE_RECURSE
  "CMakeFiles/fig18_tc_w3.dir/fig18_tc_w3.cc.o"
  "CMakeFiles/fig18_tc_w3.dir/fig18_tc_w3.cc.o.d"
  "fig18_tc_w3"
  "fig18_tc_w3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_tc_w3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
