# Empty dependencies file for fig18_tc_w3.
# This may be replaced when dependencies are built.
