# Empty dependencies file for fig16_tc_w1.
# This may be replaced when dependencies are built.
