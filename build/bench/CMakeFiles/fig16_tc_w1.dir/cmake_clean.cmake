file(REMOVE_RECURSE
  "CMakeFiles/fig16_tc_w1.dir/fig16_tc_w1.cc.o"
  "CMakeFiles/fig16_tc_w1.dir/fig16_tc_w1.cc.o.d"
  "fig16_tc_w1"
  "fig16_tc_w1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_tc_w1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
