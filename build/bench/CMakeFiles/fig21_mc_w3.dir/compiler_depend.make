# Empty compiler generated dependencies file for fig21_mc_w3.
# This may be replaced when dependencies are built.
