file(REMOVE_RECURSE
  "CMakeFiles/fig21_mc_w3.dir/fig21_mc_w3.cc.o"
  "CMakeFiles/fig21_mc_w3.dir/fig21_mc_w3.cc.o.d"
  "fig21_mc_w3"
  "fig21_mc_w3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_mc_w3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
