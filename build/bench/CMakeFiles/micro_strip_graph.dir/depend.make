# Empty dependencies file for micro_strip_graph.
# This may be replaced when dependencies are built.
