file(REMOVE_RECURSE
  "CMakeFiles/micro_strip_graph.dir/micro_strip_graph.cc.o"
  "CMakeFiles/micro_strip_graph.dir/micro_strip_graph.cc.o.d"
  "micro_strip_graph"
  "micro_strip_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_strip_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
