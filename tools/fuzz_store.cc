// Differential fuzz driver for the segment stores and the planner
// lifecycle (DESIGN.md §2d). Runs clean by default; on a divergence it
// prints the failing seed and the tail of the op log and exits nonzero, so
// CI can archive the report and a developer can replay with --seed=<S>.
//
// Usage:
//   fuzz_store [--seeds=N] [--seed=S] [--ops=N] [--planner-scenarios=N]
//
//   --seeds=N              seeds S, S+1, ..., S+N-1 (default 50)
//   --seed=S               first seed (default 1); use a reported failing
//                          seed with --seeds=1 to replay one stream
//   --ops=N                operations per seed (default 512)
//   --planner-scenarios=N  planner-level differential scenarios (default 2;
//                          0 skips the planner stage)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/planner_differential.h"
#include "check/store_fuzzer.h"

namespace {

bool ParseInt64Flag(const char* arg, const char* name, std::int64_t* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtoll(arg + len + 1, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t seeds = 50;
  std::int64_t first_seed = 1;
  std::int64_t ops = 512;
  std::int64_t planner_scenarios = 2;

  for (int i = 1; i < argc; ++i) {
    if (ParseInt64Flag(argv[i], "--seeds", &seeds) ||
        ParseInt64Flag(argv[i], "--seed", &first_seed) ||
        ParseInt64Flag(argv[i], "--ops", &ops) ||
        ParseInt64Flag(argv[i], "--planner-scenarios", &planner_scenarios)) {
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
    return 2;
  }

  // ---- Stage 1: store differential fuzz.
  carp::check::StoreFuzzOptions opt;
  opt.seed = static_cast<std::uint64_t>(first_seed);
  opt.num_seeds = static_cast<int>(seeds);
  opt.ops_per_seed = static_cast<int>(ops);
  const auto factories = carp::check::DefaultStoreFactories();
  const auto store_result = carp::check::FuzzStores(opt, factories);
  if (!store_result.ok) {
    std::fprintf(stderr, "FAIL: %s\n", store_result.error.c_str());
    std::fprintf(stderr,
                 "replay: fuzz_store --seed=%llu --seeds=1 --ops=%lld\n",
                 static_cast<unsigned long long>(store_result.failing_seed),
                 static_cast<long long>(ops));
    return 1;
  }
  std::printf("store fuzz: %lld seeds, %lld ops, all stores agree\n",
              static_cast<long long>(seeds),
              static_cast<long long>(store_result.ops_executed));

  // ---- Stage 1b: shard-accounting fuzz (DESIGN.md §2h). Same seed range;
  // audits the ShardMap ledger against the per-strip stores after every op.
  carp::check::ShardFuzzOptions shard_opt;
  shard_opt.seed = static_cast<std::uint64_t>(first_seed);
  shard_opt.num_seeds = static_cast<int>(seeds);
  shard_opt.ops_per_seed = static_cast<int>(ops);
  const auto shard_result =
      carp::check::FuzzShardAccounting(shard_opt,
                                       /*inject_cross_shard_leak=*/false);
  if (!shard_result.ok) {
    std::fprintf(stderr, "FAIL: %s\n", shard_result.error.c_str());
    std::fprintf(stderr,
                 "replay: fuzz_store --seed=%llu --seeds=1 --ops=%lld\n",
                 static_cast<unsigned long long>(shard_result.failing_seed),
                 static_cast<long long>(ops));
    return 1;
  }
  std::printf("shard accounting fuzz: %lld seeds, %lld ops, ledger clean\n",
              static_cast<long long>(seeds),
              static_cast<long long>(shard_result.ops_executed));

  // ---- Stage 1c: lifecycle-rollback fuzz (DESIGN.md §2i). Interleaves
  // release / replan / rollback at store granularity; a rolled-back repair
  // must leave every store bit-identical to the reference.
  carp::check::LifecycleFuzzOptions lifecycle_opt;
  lifecycle_opt.seed = static_cast<std::uint64_t>(first_seed);
  lifecycle_opt.num_seeds = static_cast<int>(seeds);
  const auto lifecycle_result =
      carp::check::FuzzLifecycleRollback(lifecycle_opt,
                                         /*inject_lost_rollback=*/false);
  if (!lifecycle_result.ok) {
    std::fprintf(stderr, "FAIL: %s\n", lifecycle_result.error.c_str());
    std::fprintf(stderr, "replay: fuzz_store --seed=%llu --seeds=1\n",
                 static_cast<unsigned long long>(
                     lifecycle_result.failing_seed));
    return 1;
  }
  std::printf(
      "lifecycle rollback fuzz: %lld seeds, %lld rounds, rollbacks exact\n",
      static_cast<long long>(seeds),
      static_cast<long long>(lifecycle_result.ops_executed));

  // ---- Stage 2: planner-level differential scenarios. Alternate the
  // lifecycle knobs so both the retire/prune path and the keep-everything
  // path are exercised. Each scenario also runs the engine cross-check:
  // every backend rebuilt under the time-expanded and the safe-interval
  // search engine must answer a shared query stream at equal cost with
  // collision-free interval answers (DESIGN.md §2k).
  for (std::int64_t i = 0; i < planner_scenarios; ++i) {
    carp::check::PlannerDiffOptions popt;
    popt.seed = static_cast<std::uint64_t>(first_seed + i);
    popt.retire_routes = (i % 2 == 0);
    const auto planner_result = carp::check::RunPlannerDifferential(popt);
    if (!planner_result.ok) {
      std::fprintf(stderr, "FAIL: %s\n", planner_result.error.c_str());
      return 1;
    }
    std::printf("planner differential: scenario seed=%llu retire=%d ok\n",
                static_cast<unsigned long long>(popt.seed),
                popt.retire_routes ? 1 : 0);
  }

  // ---- Stage 3: engine fault calibration (StoreFault::kOverwideInterval).
  // Prove the engine differential's detection power: with every derived
  // free interval widened one step into the occupied slot that ends it,
  // the cost-equality + collision audits must flag a scenario within the
  // seed budget — otherwise the cross-check above is running blind.
  if (planner_scenarios > 0) {
    const auto engine_fault = carp::check::RunEngineFaultCalibration(20);
    if (!engine_fault.detected) {
      std::fprintf(stderr,
                   "FAIL: overwide-interval fault NOT detected in %d "
                   "scenarios: %s\n",
                   engine_fault.seeds_tried, engine_fault.detail.c_str());
      return 1;
    }
    std::printf("engine fault calibration: detected in %d scenario(s): %s\n",
                engine_fault.seeds_tried, engine_fault.detail.c_str());
  }

  std::printf("OK\n");
  return 0;
}
