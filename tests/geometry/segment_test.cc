#include "geometry/segment.h"

#include <gtest/gtest.h>

namespace carp::geometry {
namespace {

TEST(SegmentTest, ForwardSlope) {
  Segment s({0, 2}, {5, 7});
  EXPECT_EQ(s.slope(), 1);
  EXPECT_EQ(s.duration(), 5);
  EXPECT_FALSE(s.is_point());
}

TEST(SegmentTest, BackwardSlope) {
  Segment s({3, 9}, {7, 5});
  EXPECT_EQ(s.slope(), -1);
  EXPECT_EQ(s.duration(), 4);
}

TEST(SegmentTest, WaitSlope) {
  Segment s({2, 4}, {6, 4});
  EXPECT_EQ(s.slope(), 0);
  EXPECT_EQ(s.duration(), 4);
}

TEST(SegmentTest, PointSegment) {
  Segment s({5, 3}, {5, 3});
  EXPECT_TRUE(s.is_point());
  EXPECT_EQ(s.slope(), 0);
  EXPECT_EQ(s.duration(), 0);
}

TEST(SegmentTest, PosAtInterpolates) {
  Segment fwd({10, 0}, {14, 4});
  for (TimeStep t = 10; t <= 14; ++t) {
    EXPECT_EQ(fwd.PosAt(t), t - 10);
  }
  Segment bwd({0, 4}, {4, 0});
  EXPECT_EQ(bwd.PosAt(0), 4);
  EXPECT_EQ(bwd.PosAt(2), 2);
  EXPECT_EQ(bwd.PosAt(4), 0);
  Segment wait({1, 7}, {5, 7});
  EXPECT_EQ(wait.PosAt(3), 7);
}

TEST(SegmentTest, TimeOverlaps) {
  Segment a({0, 0}, {5, 5});
  EXPECT_TRUE(a.TimeOverlaps(Segment({5, 9}, {9, 9})));   // touch at t=5
  EXPECT_TRUE(a.TimeOverlaps(Segment({2, 3}, {3, 4})));   // nested
  EXPECT_FALSE(a.TimeOverlaps(Segment({6, 0}, {8, 2})));  // disjoint
}

TEST(SegmentTest, EqualityIsStructural) {
  EXPECT_EQ(Segment({1, 2}, {3, 4}), Segment({1, 2}, {3, 4}));
  EXPECT_NE(Segment({1, 2}, {3, 4}), Segment({1, 2}, {3, 2}));
}

using SegmentDeathTest = ::testing::Test;

TEST(SegmentDeathTest, RejectsBackwardTime) {
  EXPECT_DEATH(Segment({5, 0}, {4, 1}), "backward in time");
}

TEST(SegmentDeathTest, RejectsNonUnitSlope) {
  EXPECT_DEATH(Segment({0, 0}, {2, 5}), "slope not in");
}

TEST(SegmentDeathTest, PosAtOutsideSpan) {
  Segment s({2, 0}, {4, 2});
  EXPECT_DEATH(s.PosAt(5), "out of span");
}

}  // namespace
}  // namespace carp::geometry
