#include "geometry/rotation.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/intersection.h"

namespace carp::geometry {
namespace {

TEST(RotationTest, SlopePlusOneKeyIsInterceptB) {
  // Line pos = t + b: key is b (Sec. V-D derivation).
  Segment s({3, 8}, {7, 12});
  EXPECT_EQ(IndexKey(s), 5);
}

TEST(RotationTest, SlopeMinusOneKeyIsInterceptC) {
  // Line pos = -t + c: key is c.
  Segment s({2, 9}, {6, 5});
  EXPECT_EQ(IndexKey(s), 11);
}

TEST(RotationTest, SlopeZeroKeyIsPosition) {
  Segment s({4, 6}, {9, 6});
  EXPECT_EQ(IndexKey(s), 6);
}

TEST(RotationTest, KeyConstantAlongSegment) {
  Segment s({3, 8}, {7, 12});
  EXPECT_EQ(LineKey(1, s.start()), LineKey(1, s.finish()));
  Segment b({2, 9}, {6, 5});
  EXPECT_EQ(LineKey(-1, b.start()), LineKey(-1, b.finish()));
}

TEST(RotationTest, RotateForSlopeOrthoMatchesLineKey) {
  // The integer line key equals the rotated orthogonal coordinate
  // (times sqrt(2)) of Eq. (4): the paper's example rotates <0,8>..<5,13>
  // (slope +1) to spatial coordinate 4*sqrt(2) -> ortho = 8.
  SpaceTimePoint p{0, 8};
  RotatedPoint r = RotateForSlope(1, p);
  EXPECT_EQ(r.ortho, 8);
  EXPECT_EQ(r.ortho, LineKey(1, p));

  SpaceTimePoint q{5, 13};
  EXPECT_EQ(RotateForSlope(1, q).ortho, 8);  // same line, same coordinate
}

TEST(RotationTest, RotationPreservesLineMembership) {
  Rng rng(77);
  for (int iter = 0; iter < 500; ++iter) {
    const int slope = static_cast<int>(rng.UniformInt(0, 1)) * 2 - 1;
    const TimeStep t0 = rng.UniformInt(0, 50);
    const std::int64_t p0 = rng.UniformInt(0, 50);
    const TimeStep dt = rng.UniformInt(0, 20);
    SpaceTimePoint a{t0, p0};
    SpaceTimePoint b{t0 + dt, p0 + slope * dt};
    EXPECT_EQ(RotateForSlope(slope, a).ortho, RotateForSlope(slope, b).ortho);
    EXPECT_EQ(LineKey(slope, a), LineKey(slope, b));
  }
}

TEST(RotationTest, SameSlopeSegmentsCollideIffSameKey) {
  // The invariant the slope index relies on: equal-slope segments can only
  // conflict when they share the line key.
  Rng rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    const int slope = static_cast<int>(rng.UniformInt(-1, 1));
    auto make = [&]() {
      const TimeStep t0 = rng.UniformInt(0, 10);
      const std::int64_t p0 = rng.UniformInt(0, 10);
      const TimeStep dt = rng.UniformInt(0, 8);
      std::int64_t p1 = p0 + slope * dt;
      if (p1 < 0) p1 = p0;  // degenerate to a wait
      return Segment({t0, p0}, {t0 + static_cast<TimeStep>(
                                         p1 == p0 + slope * dt ? dt : 0),
                                p1});
    };
    const Segment a = make();
    const Segment b = make();
    if (a.slope() != b.slope()) continue;
    if (Collides(a, b)) {
      EXPECT_EQ(IndexKey(a), IndexKey(b)) << "a=" << a << " b=" << b;
    }
  }
}

using RotationDeathTest = ::testing::Test;

TEST(RotationDeathTest, RejectsInvalidSlope) {
  EXPECT_DEATH(LineKey(2, SpaceTimePoint{0, 0}), "invalid slope");
}

}  // namespace
}  // namespace carp::geometry
