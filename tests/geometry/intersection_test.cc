#include "geometry/intersection.h"

#include <optional>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace carp::geometry {
namespace {

// Ground-truth oracle: enumerate every shared timestep and check the
// discrete CARP conflict conditions (Def. 3) directly.
std::optional<Collision> BruteForce(const Segment& a, const Segment& b) {
  const TimeStep lo = std::max(a.start().t, b.start().t);
  const TimeStep hi = std::min(a.finish().t, b.finish().t);
  std::optional<Collision> best;
  for (TimeStep t = lo; t <= hi; ++t) {
    if (a.PosAt(t) == b.PosAt(t)) {
      return Collision{t, ConflictKind::kVertex};  // earliest wins
    }
    if (t + 1 <= hi && a.PosAt(t) == b.PosAt(t + 1) &&
        a.PosAt(t + 1) == b.PosAt(t)) {
      return Collision{t, ConflictKind::kSwap};
    }
  }
  return best;
}

TEST(FindCollisionTest, OppositeSlopesVertexConflict) {
  // phi moves 0->4 over t=0..4; psi moves 4->0: they meet at t=2, pos=2.
  Segment phi({0, 0}, {4, 4});
  Segment psi({0, 4}, {4, 0});
  auto c = FindCollision(phi, psi);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->time, 2);
  EXPECT_EQ(c->kind, ConflictKind::kVertex);
}

TEST(FindCollisionTest, OppositeSlopesSwapConflict) {
  // phi 0->3 from t=0; psi 3->0 from t=1: positions cross between
  // integers — a swap (Fig. 1b / Fig. 6b).
  Segment phi({0, 0}, {3, 3});
  Segment psi({0, 3}, {3, 0});
  auto c = FindCollision(phi, psi);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->kind, ConflictKind::kSwap);
  EXPECT_EQ(c->time, 1);  // floor of the half-integer crossing (Eq. 3)
}

TEST(FindCollisionTest, MoverHitsWaiter) {
  Segment mover({0, 0}, {5, 5});
  Segment waiter({0, 3}, {10, 3});
  auto c = FindCollision(mover, waiter);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->time, 3);
  EXPECT_EQ(c->kind, ConflictKind::kVertex);
}

TEST(FindCollisionTest, ParallelSameLineOverlap) {
  // Both slope +1 on the same line, overlapping spans: collinear overlap,
  // which Eq. (2)'s strict signs would miss.
  Segment a({0, 0}, {6, 6});
  Segment b({3, 3}, {8, 8});
  auto c = FindCollision(a, b);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->time, 3);
  EXPECT_EQ(c->kind, ConflictKind::kVertex);
}

TEST(FindCollisionTest, ParallelDistinctLinesNeverCollide) {
  Segment a({0, 0}, {6, 6});
  Segment b({0, 1}, {6, 7});
  EXPECT_FALSE(FindCollision(a, b).has_value());
  Segment w1({0, 2}, {9, 2});
  Segment w2({0, 3}, {9, 3});
  EXPECT_FALSE(FindCollision(w1, w2).has_value());
}

TEST(FindCollisionTest, EndpointTouchIsVertexConflict) {
  // phi arrives at pos 4 at t=4 and stops; psi passes through pos 4 at
  // t=4: a real vertex conflict at phi's endpoint.
  Segment phi({0, 0}, {4, 4});
  Segment psi({4, 4}, {6, 6});
  auto c = FindCollision(phi, psi);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->time, 4);
  EXPECT_EQ(c->kind, ConflictKind::kVertex);
}

TEST(FindCollisionTest, FollowingIsNotACollision) {
  // b follows one cell behind a: same cells one step later. Legal.
  Segment a({0, 1}, {5, 6});
  Segment b({0, 0}, {5, 5});
  EXPECT_FALSE(FindCollision(a, b).has_value());
}

TEST(FindCollisionTest, NoTemporalOverlapNoCollision) {
  Segment a({0, 0}, {3, 3});
  Segment b({4, 3}, {7, 0});
  EXPECT_FALSE(FindCollision(a, b).has_value());
}

TEST(FindCollisionTest, PointProbeDetectsOccupancy) {
  Segment occupant({2, 5}, {8, 5});
  EXPECT_TRUE(Collides(Segment({4, 5}, {4, 5}), occupant));
  EXPECT_FALSE(Collides(Segment({4, 6}, {4, 6}), occupant));
  EXPECT_FALSE(Collides(Segment({9, 5}, {9, 5}), occupant));
}

TEST(FindCollisionTest, SymmetricInArguments) {
  Segment a({0, 0}, {5, 5});
  Segment b({1, 6}, {7, 0});
  auto ab = FindCollision(a, b);
  auto ba = FindCollision(b, a);
  ASSERT_EQ(ab.has_value(), ba.has_value());
  if (ab.has_value()) {
    EXPECT_EQ(ab->time, ba->time);
    EXPECT_EQ(ab->kind, ba->kind);
  }
}

TEST(CollisionTimeTest, InfiniteWhenDisjoint) {
  EXPECT_EQ(CollisionTime(Segment({0, 0}, {2, 2}), Segment({0, 5}, {2, 7})),
            kInfiniteTime);
}

TEST(PaperEq2Test, DetectsProperCrossing) {
  // A strict interior crossing: Eq. (2) and the exact predicate agree.
  Segment phi({0, 0}, {4, 4});
  Segment psi({0, 4}, {4, 0});
  EXPECT_TRUE(PaperEq2Intersects(phi, psi));
  EXPECT_TRUE(Collides(phi, psi));
}

TEST(PaperEq2Test, MissesEndpointTouch) {
  // Documents the gap the production predicate closes: strict sign test
  // returns false at endpoint contact, but it is a real conflict.
  Segment phi({0, 0}, {4, 4});
  Segment psi({4, 4}, {6, 6});
  EXPECT_FALSE(PaperEq2Intersects(phi, psi));
  EXPECT_TRUE(Collides(phi, psi));
}

TEST(PaperEq2Test, RejectsParallelDisjoint) {
  EXPECT_FALSE(
      PaperEq2Intersects(Segment({0, 0}, {4, 4}), Segment({0, 2}, {4, 6})));
}

TEST(PaperEq3Test, MatchesExactTimeOnOppositeSlopeCrossings) {
  // For opposite-slope proper crossings Eq. (3) equals the exact earliest
  // collision time (floor for swaps).
  Segment phi({0, 0}, {4, 4});
  Segment psi({0, 4}, {4, 0});
  EXPECT_EQ(PaperEq3CollisionTime(phi, psi), CollisionTime(phi, psi));

  Segment phi2({0, 0}, {3, 3});
  Segment psi2({0, 3}, {3, 0});
  EXPECT_EQ(PaperEq3CollisionTime(phi2, psi2), CollisionTime(phi2, psi2));
}

// ---------------------------------------------------------------------
// Property test: the closed-form predicate must agree with brute-force
// enumeration of the discrete semantics on random segment pairs.
// ---------------------------------------------------------------------

class IntersectionPropertyTest : public ::testing::TestWithParam<int> {};

Segment RandomSegment(Rng& rng) {
  const TimeStep t0 = rng.UniformInt(0, 20);
  const std::int64_t p0 = rng.UniformInt(0, 12);
  const TimeStep dur = rng.UniformInt(0, 10);
  const int slope = static_cast<int>(rng.UniformInt(-1, 1));
  std::int64_t p1 = p0 + slope * dur;
  if (p1 < 0) p1 = p0 - slope * dur;  // keep positions non-negative
  return Segment({t0, p0}, {t0 + dur, p1});
}

TEST_P(IntersectionPropertyTest, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 2000; ++iter) {
    const Segment a = RandomSegment(rng);
    const Segment b = RandomSegment(rng);
    const auto expected = BruteForce(a, b);
    const auto actual = FindCollision(a, b);
    ASSERT_EQ(expected.has_value(), actual.has_value())
        << "a=" << a << " b=" << b;
    if (expected.has_value()) {
      EXPECT_EQ(expected->time, actual->time) << "a=" << a << " b=" << b;
      EXPECT_EQ(expected->kind, actual->kind) << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectionPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace carp::geometry
