#include "baselines/cbs.h"

#include <gtest/gtest.h>

#include "core/collision.h"
#include "core/reservation_table.h"

namespace carp::baselines {
namespace {

using core::ReservationTable;
using core::Route;
using core::RouteSetValidator;
using core::WarehouseMatrix;

class CbsTest : public ::testing::Test {
 protected:
  WarehouseMatrix matrix_{6, 6};
  ReservationTable external_;
  CbsOptions options_;
};

TEST_F(CbsTest, EmptyInstanceSucceedsTrivially) {
  CbsSolver solver(matrix_);
  auto result = solver.Solve({}, external_, options_);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->empty());
}

TEST_F(CbsTest, IndependentAgentsGetShortestPaths) {
  CbsSolver solver(matrix_);
  std::vector<CbsAgent> agents = {
      {0, {0, 0}, {0, 5}},
      {0, {5, 0}, {5, 5}},
  };
  auto result = solver.Solve(agents, external_, options_);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ((*result)[0].length(), 6);
  EXPECT_EQ((*result)[1].length(), 6);
  EXPECT_TRUE(RouteSetValidator::IsCollisionFree(*result));
}

TEST_F(CbsTest, ResolvesVertexConflict) {
  CbsSolver solver(matrix_);
  // Both agents want to cross the centre at the same time.
  std::vector<CbsAgent> agents = {
      {0, {2, 0}, {2, 4}},
      {0, {0, 2}, {4, 2}},
  };
  auto result = solver.Solve(agents, external_, options_);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(RouteSetValidator::IsCollisionFree(*result));
  // Optimal resolution costs at most one extra step for one agent.
  const std::int64_t total =
      (*result)[0].length() + (*result)[1].length();
  EXPECT_LE(total, 5 + 5 + 1 + 2);
}

TEST_F(CbsTest, ResolvesHeadOnSwap) {
  CbsSolver solver(matrix_);
  std::vector<CbsAgent> agents = {
      {0, {0, 0}, {0, 3}},
      {0, {0, 3}, {0, 0}},
  };
  auto result = solver.Solve(agents, external_, options_);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(RouteSetValidator::IsCollisionFree(*result));
}

TEST_F(CbsTest, RespectsExternalReservations) {
  // External traffic occupies the direct corridor for a while.
  std::vector<GridCoord> park(8, GridCoord{0, 2});
  external_.Reserve(99, Route(0, park));
  CbsSolver solver(matrix_);
  std::vector<CbsAgent> agents = {{0, {0, 0}, {0, 4}}};
  auto result = solver.Solve(agents, external_, options_);
  ASSERT_TRUE(result.has_value());
  // Must also be conflict-free against the external route.
  std::vector<Route> all = *result;
  all.push_back(Route(0, park));
  EXPECT_TRUE(RouteSetValidator::IsCollisionFree(all));
}

TEST_F(CbsTest, FourWayIntersectionCross) {
  CbsSolver solver(matrix_);
  std::vector<CbsAgent> agents = {
      {0, {2, 0}, {2, 5}},
      {0, {0, 2}, {5, 2}},
      {0, {2, 5}, {2, 0}},
      {0, {5, 2}, {0, 2}},
  };
  auto result = solver.Solve(agents, external_, options_);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(RouteSetValidator::IsCollisionFree(*result));
}

TEST_F(CbsTest, NodeBudgetExhaustionReturnsNullopt) {
  options_.max_nodes = 1;
  CbsSolver solver(matrix_);
  // Conflicting pair needs >1 node to resolve.
  std::vector<CbsAgent> agents = {
      {0, {0, 0}, {0, 3}},
      {0, {0, 3}, {0, 0}},
  };
  EXPECT_FALSE(solver.Solve(agents, external_, options_).has_value());
  EXPECT_GE(solver.last_stats().high_level_nodes, 1);
}

TEST_F(CbsTest, UnroutableAgentFails) {
  WarehouseMatrix walled = WarehouseMatrix::FromAscii(
      ".#.\n"
      ".#.\n"
      ".#.\n");
  CbsSolver solver(walled);
  std::vector<CbsAgent> agents = {{0, {0, 0}, {0, 2}}};
  EXPECT_FALSE(solver.Solve(agents, external_, options_).has_value());
}

TEST_F(CbsTest, StaggeredStartTimesRespected) {
  CbsSolver solver(matrix_);
  std::vector<CbsAgent> agents = {
      {5, {0, 0}, {0, 3}},
      {9, {3, 0}, {3, 3}},
  };
  auto result = solver.Solve(agents, external_, options_);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE((*result)[0].start_time(), 5);
  EXPECT_GE((*result)[1].start_time(), 9);
}

}  // namespace
}  // namespace carp::baselines
