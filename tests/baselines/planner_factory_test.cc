#include "baselines/planner_factory.h"

#include <gtest/gtest.h>

#include "core/collision.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"

namespace carp::baselines {
namespace {

TEST(PlannerFactoryTest, CreatesAllPaperAlgorithms) {
  layout::Warehouse w = layout::GenerateWarehouse(layout::PresetTiny());
  for (const std::string& name : PaperAlgorithms()) {
    auto planner = MakePlanner(name, w.matrix);
    ASSERT_NE(planner, nullptr) << name;
    EXPECT_EQ(planner->name(), name);
  }
}

TEST(PlannerFactoryTest, PaperAlgorithmOrder) {
  EXPECT_EQ(PaperAlgorithms(),
            (std::vector<std::string>{"SAP", "RP", "TWP", "ACP", "SRP"}));
}

TEST(PlannerFactoryTest, SrpNoIndexVariant) {
  layout::Warehouse w = layout::GenerateWarehouse(layout::PresetTiny());
  auto planner = MakePlanner("SRP-noindex", w.matrix);
  ASSERT_NE(planner, nullptr);
  EXPECT_EQ(planner->name(), "SRP");  // same algorithm, different store
}

TEST(PlannerFactoryTest, UnknownTagReturnsNull) {
  layout::Warehouse w = layout::GenerateWarehouse(layout::PresetTiny());
  EXPECT_EQ(MakePlanner("NOPE", w.matrix), nullptr);
  EXPECT_EQ(MakePlanner("", w.matrix), nullptr);
}

TEST(PlannerFactoryTest, EveryPlannerPlansABasicRoute) {
  layout::Warehouse w = layout::GenerateWarehouse(layout::PresetTiny());
  for (const std::string& name : PaperAlgorithms()) {
    auto planner = MakePlanner(name, w.matrix);
    auto route = planner->PlanRoute(0, {0, 0}, {0, 10});
    ASSERT_TRUE(route.has_value()) << name;
    EXPECT_TRUE(route->IsKinematicallyValid(w.matrix)) << name;
    EXPECT_TRUE(core::RouteSetValidator::IsCollisionFree(
        planner->committed_routes()))
        << name;
  }
}

}  // namespace
}  // namespace carp::baselines
