#include "baselines/sap_planner.h"

#include <gtest/gtest.h>

#include "core/collision.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "workload/request_stream.h"
#include "workload/task_generator.h"

namespace carp::baselines {
namespace {

using core::RouteSetValidator;

class SapPlannerTest : public ::testing::Test {
 protected:
  layout::Warehouse warehouse_ =
      layout::GenerateWarehouse(layout::PresetTiny());
};

TEST_F(SapPlannerTest, SingleRouteOptimalOnEmptyFloor) {
  SapPlanner planner(warehouse_.matrix);
  auto route = planner.PlanRoute(0, {0, 0}, {0, 10});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->length(), 11);
  EXPECT_EQ(planner.stats().queries, 1);
  EXPECT_EQ(planner.stats().failures, 0);
}

TEST_F(SapPlannerTest, SequentialPlansAvoidEachOther) {
  SapPlanner planner(warehouse_.matrix);
  // Two head-on journeys along the same corridor at the same time.
  auto r1 = planner.PlanRoute(0, {0, 0}, {0, 10});
  auto r2 = planner.PlanRoute(0, {0, 10}, {0, 0});
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(RouteSetValidator::IsCollisionFree({*r1, *r2}));
  // The second route must be delayed or detoured.
  EXPECT_GT(r2->finish_term(), r1->length());
}

TEST_F(SapPlannerTest, ReservationStateGrows) {
  SapPlanner planner(warehouse_.matrix);
  planner.PlanRoute(0, {0, 0}, {0, 10});
  EXPECT_EQ(planner.reservations().EntryCount(), 11u);
  planner.PlanRoute(0, {1, 0}, {1, 5});
  EXPECT_EQ(planner.reservations().EntryCount(), 17u);
  EXPECT_GT(planner.RetainedBytes(), 0u);
}

TEST_F(SapPlannerTest, ResetClearsEverything) {
  SapPlanner planner(warehouse_.matrix);
  planner.PlanRoute(0, {0, 0}, {0, 5});
  planner.Reset();
  EXPECT_EQ(planner.reservations().EntryCount(), 0u);
  EXPECT_TRUE(planner.committed_routes().empty());
  EXPECT_EQ(planner.stats().queries, 0);
}

TEST_F(SapPlannerTest, DispatchDelayOnBusyOrigin) {
  SapPlanner planner(warehouse_.matrix);
  auto blocker = planner.PlanRoute(0, {0, 3}, {0, 3});
  ASSERT_TRUE(blocker.has_value());
  auto route = planner.PlanRoute(0, {0, 3}, {0, 8});
  ASSERT_TRUE(route.has_value());
  EXPECT_GE(route->start_time(), 1);
}

TEST_F(SapPlannerTest, ReleaseRouteFreesCellsForReplanning) {
  SapPlanner planner(warehouse_.matrix);
  auto r1 = planner.PlanRoute(0, {0, 0}, {0, 10});
  ASSERT_TRUE(r1.has_value());
  auto r2 = planner.PlanRoute(0, {0, 10}, {0, 0});
  ASSERT_TRUE(r2.has_value());
  EXPECT_GT(r2->finish_term(), r1->length());  // head-on: delayed/detoured
  // Retire both and re-issue the delayed journey: with the corridor's
  // reservations really gone it must come back unimpeded.
  EXPECT_TRUE(planner.ReleaseRoute(*r2));
  EXPECT_TRUE(planner.ReleaseRoute(*r1));
  EXPECT_EQ(planner.reservations().EntryCount(), 0u);
  EXPECT_EQ(planner.live_routes(), 0u);
  auto r3 = planner.PlanRoute(0, {0, 10}, {0, 0});
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->finish_term(), 11);
  // Double release reports absence.
  EXPECT_FALSE(planner.ReleaseRoute(*r1));
  EXPECT_EQ(planner.stats().routes_released, 2);
}

TEST_F(SapPlannerTest, PruneBeforeRetiresExpiredRoutes) {
  SapPlanner planner(warehouse_.matrix);
  auto past = planner.PlanRoute(0, {0, 0}, {0, 5});
  ASSERT_TRUE(past.has_value());
  auto future = planner.PlanRoute(100, {1, 0}, {1, 5});
  ASSERT_TRUE(future.has_value());
  EXPECT_EQ(planner.PruneBefore(50), 1u);
  EXPECT_EQ(planner.live_routes(), 1u);
  EXPECT_EQ(planner.stats().routes_pruned, 1);
  // The pruned route's cells are plannable again; the future route's are
  // still reserved.
  auto again = planner.PlanRoute(0, {0, 0}, {0, 5});
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->finish_term(), 6);
  auto blocked = planner.PlanRoute(100, {1, 0}, {1, 5});
  ASSERT_TRUE(blocked.has_value());
  EXPECT_GT(blocked->finish_term(), future->finish_term());
}

TEST_F(SapPlannerTest, WorkloadStaysCollisionFree) {
  SapPlanner planner(warehouse_.matrix);
  workload::TaskGeneratorOptions topts;
  topts.task_count = 50;
  topts.day_length = 250;
  topts.seed = 21;
  const auto tasks = workload::GenerateTasks(
      warehouse_, workload::ArrivalProfile::Uniform(), topts);
  for (const auto& q : workload::FlattenToQueries(warehouse_, tasks)) {
    planner.PlanRoute(q.emergence, q.origin, q.destination);
  }
  EXPECT_EQ(planner.stats().failures, 0);
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

}  // namespace
}  // namespace carp::baselines
