#include "baselines/twp_planner.h"

#include <gtest/gtest.h>

#include "core/collision.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "workload/request_stream.h"
#include "workload/task_generator.h"

namespace carp::baselines {
namespace {

using core::RouteSetValidator;

class TwpPlannerTest : public ::testing::Test {
 protected:
  layout::Warehouse warehouse_ =
      layout::GenerateWarehouse(layout::PresetTiny());
};

TEST_F(TwpPlannerTest, UnobstructedRouteOptimalAcrossWindows) {
  TwpPlannerOptions options;
  options.window = 4;  // force several chained windows
  TwpPlanner planner(warehouse_.matrix, options);
  auto route = planner.PlanRoute(0, {0, 0}, {0, 20});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->length(), 21);
  EXPECT_TRUE(route->IsKinematicallyValid(warehouse_.matrix));
}

TEST_F(TwpPlannerTest, RouteSpanningManyWindowsIsContinuous) {
  TwpPlannerOptions options;
  options.window = 3;
  TwpPlanner planner(warehouse_.matrix, options);
  auto route = planner.PlanRoute(0, {0, 0},
                                 {warehouse_.matrix.height() - 1,
                                  warehouse_.matrix.width() - 1});
  ASSERT_TRUE(route.has_value());
  for (TimeStep t = route->start_time(); t < route->end_time(); ++t) {
    EXPECT_LE(ManhattanDistance(route->At(t), route->At(t + 1)), 1);
  }
}

TEST_F(TwpPlannerTest, HeadOnPairResolvedWithinWindow) {
  TwpPlannerOptions options;
  options.window = 8;
  TwpPlanner planner(warehouse_.matrix, options);
  auto r1 = planner.PlanRoute(0, {0, 0}, {0, 12});
  auto r2 = planner.PlanRoute(0, {0, 12}, {0, 0});
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

TEST_F(TwpPlannerTest, SmallWindowStillSafe) {
  // Degenerate window (2 steps of awareness): routes must still come out
  // collision-free because every step was checked inside some window.
  TwpPlannerOptions options;
  options.window = 2;
  TwpPlanner planner(warehouse_.matrix, options);
  workload::TaskGeneratorOptions topts;
  topts.task_count = 30;
  topts.day_length = 120;
  topts.seed = 44;
  const auto tasks = workload::GenerateTasks(
      warehouse_, workload::ArrivalProfile::Uniform(), topts);
  for (const auto& q : workload::FlattenToQueries(warehouse_, tasks)) {
    planner.PlanRoute(q.emergence, q.origin, q.destination);
  }
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

TEST_F(TwpPlannerTest, WorkloadStaysCollisionFree) {
  TwpPlanner planner(warehouse_.matrix);
  workload::TaskGeneratorOptions topts;
  topts.task_count = 50;
  topts.day_length = 250;
  topts.seed = 45;
  const auto tasks = workload::GenerateTasks(
      warehouse_, workload::ArrivalProfile::Uniform(), topts);
  for (const auto& q : workload::FlattenToQueries(warehouse_, tasks)) {
    planner.PlanRoute(q.emergence, q.origin, q.destination);
  }
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

TEST_F(TwpPlannerTest, MaxWindowsBoundsLooping) {
  TwpPlannerOptions options;
  options.window = 2;
  options.max_windows = 1;  // cannot reach a far goal in one window
  TwpPlanner planner(warehouse_.matrix, options);
  auto route = planner.PlanRoute(0, {0, 0}, {39, 29});
  EXPECT_FALSE(route.has_value());
  EXPECT_EQ(planner.stats().failures, 1);
}

}  // namespace
}  // namespace carp::baselines
