#include "baselines/acp_planner.h"

#include <gtest/gtest.h>

#include "core/collision.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "workload/request_stream.h"
#include "workload/task_generator.h"

namespace carp::baselines {
namespace {

using core::RouteSetValidator;

class AcpPlannerTest : public ::testing::Test {
 protected:
  layout::Warehouse warehouse_ =
      layout::GenerateWarehouse(layout::PresetTiny());
};

TEST_F(AcpPlannerTest, CachesShortestPaths) {
  AcpPlanner planner(warehouse_.matrix);
  EXPECT_EQ(planner.cache_size(), 0u);
  planner.PlanRoute(0, {0, 0}, {0, 10});
  EXPECT_EQ(planner.cache_size(), 1u);
  EXPECT_EQ(planner.stats().cache_hits, 0);
  // Same OD pair later: a cache hit, no new entry.
  planner.PlanRoute(50, {0, 0}, {0, 10});
  EXPECT_EQ(planner.cache_size(), 1u);
  EXPECT_EQ(planner.stats().cache_hits, 1);
}

TEST_F(AcpPlannerTest, CachedRouteIsShortestWhenUncontested) {
  AcpPlanner planner(warehouse_.matrix);
  auto route = planner.PlanRoute(0, {0, 0}, {0, 10});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->length(), 11);
  EXPECT_EQ(route->WaitCount(), 0);
}

TEST_F(AcpPlannerTest, InsertsWaitsOnConflicts) {
  AcpPlanner planner(warehouse_.matrix);
  // Robot A crosses (0,5) while robot B wants to pass through it.
  auto a = planner.PlanRoute(0, {0, 0}, {0, 10});
  ASSERT_TRUE(a.has_value());
  auto b = planner.PlanRoute(0, {1, 5}, {0, 5});
  // B's target cell is occupied at the instant A passes; B waits or
  // escalates — either way the set stays clean.
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

TEST_F(AcpPlannerTest, EscalatesToAStarWhenWaitingFails) {
  AcpPlanner planner(warehouse_.matrix);
  // Head-on in a corridor: pure waiting on the cached path can never
  // resolve it, so ACP escalates.
  auto r1 = planner.PlanRoute(0, {0, 0}, {0, 12});
  auto r2 = planner.PlanRoute(0, {0, 12}, {0, 0});
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

TEST_F(AcpPlannerTest, CacheCountsTowardMemory) {
  AcpPlanner planner(warehouse_.matrix);
  const std::size_t before = planner.RetainedBytes();
  for (std::int32_t c = 1; c <= 20; ++c) {
    planner.PlanRoute(c, {0, 0}, {0, c});
  }
  EXPECT_EQ(planner.cache_size(), 20u);
  EXPECT_GT(planner.RetainedBytes(), before);
}

TEST_F(AcpPlannerTest, ResetClearsCache) {
  AcpPlanner planner(warehouse_.matrix);
  planner.PlanRoute(0, {0, 0}, {0, 5});
  planner.Reset();
  EXPECT_EQ(planner.cache_size(), 0u);
  EXPECT_TRUE(planner.committed_routes().empty());
}

// ---- Cache byte budget + LRU eviction (ISSUE 8 satellite). The
// time-independent OD cache used to grow without bound; now it meters
// bytes and evicts least-recently-used entries past the budget.

TEST_F(AcpPlannerTest, BudgetForcesEvictionsAndBoundsBytes) {
  AcpPlannerOptions options;
  options.cache_budget_bytes = 2048;
  AcpPlanner planner(warehouse_.matrix, options);
  for (std::int32_t c = 1; c <= 40; ++c) {
    planner.PlanRoute(c, {0, 0}, {0, c % (warehouse_.matrix.width() - 1)});
    planner.PlanRoute(c, {0, c % (warehouse_.matrix.width() - 1)}, {c % 3, 0});
  }
  EXPECT_GT(planner.cache_evictions(), 0);
  // The budget may be overshot by at most the one most-recent entry the
  // evictor refuses to drop (the caller holds a pointer into it).
  EXPECT_LE(planner.cache_bytes(), 2 * options.cache_budget_bytes);
  EXPECT_LT(planner.cache_size(), 40u);
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

TEST_F(AcpPlannerTest, EvictionKeepsRecentlyUsedEntries) {
  AcpPlannerOptions options;
  options.cache_budget_bytes = 4096;
  AcpPlanner planner(warehouse_.matrix, options);

  // Seed one OD pair, then keep it hot while churning distinct pairs
  // through the budget: the hot pair must stay cached throughout.
  planner.PlanRoute(0, {0, 0}, {0, 7});
  for (std::int32_t c = 1; c <= 60; ++c) {
    planner.PlanRoute(10 * c, {0, 0}, {0, 7});  // refresh the hot entry
    const std::int64_t hits_before = planner.stats().cache_hits;
    planner.PlanRoute(10 * c + 5, {1 + c % (warehouse_.matrix.height() - 2), 0},
                      {0, 1 + c % (warehouse_.matrix.width() - 2)});
    (void)hits_before;
  }
  const std::int64_t hits = planner.stats().cache_hits;
  planner.PlanRoute(100000, {0, 0}, {0, 7});
  EXPECT_EQ(planner.stats().cache_hits, hits + 1)
      << "hot OD pair was evicted despite constant reuse";
  EXPECT_GT(planner.cache_evictions(), 0);
}

TEST_F(AcpPlannerTest, BudgetedCacheStillReturnsCorrectRoutes) {
  // Differential: a tightly budgeted planner and an unbudgeted one plan
  // the same stream; evictions may cost recomputation but never change
  // committed geometry.
  AcpPlannerOptions tight;
  tight.cache_budget_bytes = 1024;
  AcpPlanner budgeted(warehouse_.matrix, tight);
  AcpPlanner unbounded(warehouse_.matrix);
  for (std::int32_t c = 1; c <= 30; ++c) {
    const GridCoord origin{0, c % (warehouse_.matrix.width() - 1)};
    const GridCoord dest{warehouse_.matrix.height() - 1,
                         (3 * c) % (warehouse_.matrix.width() - 1)};
    const auto a = budgeted.PlanRoute(c, origin, dest);
    const auto b = unbounded.PlanRoute(c, origin, dest);
    ASSERT_EQ(a.has_value(), b.has_value()) << c;
    if (a.has_value()) {
      EXPECT_EQ(a->cells(), b->cells()) << c;
    }
  }
  EXPECT_GT(budgeted.cache_evictions(), 0);
  EXPECT_EQ(unbounded.cache_evictions(), 0);
}

TEST_F(AcpPlannerTest, WorkloadStaysCollisionFree) {
  AcpPlanner planner(warehouse_.matrix);
  workload::TaskGeneratorOptions topts;
  topts.task_count = 50;
  topts.day_length = 200;
  topts.seed = 55;
  const auto tasks = workload::GenerateTasks(
      warehouse_, workload::ArrivalProfile::Uniform(), topts);
  for (const auto& q : workload::FlattenToQueries(warehouse_, tasks)) {
    planner.PlanRoute(q.emergence, q.origin, q.destination);
  }
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
  EXPECT_GT(planner.stats().cache_hits, 0);
}

}  // namespace
}  // namespace carp::baselines
