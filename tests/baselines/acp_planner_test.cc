#include "baselines/acp_planner.h"

#include <gtest/gtest.h>

#include "core/collision.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "workload/request_stream.h"
#include "workload/task_generator.h"

namespace carp::baselines {
namespace {

using core::RouteSetValidator;

class AcpPlannerTest : public ::testing::Test {
 protected:
  layout::Warehouse warehouse_ =
      layout::GenerateWarehouse(layout::PresetTiny());
};

TEST_F(AcpPlannerTest, CachesShortestPaths) {
  AcpPlanner planner(warehouse_.matrix);
  EXPECT_EQ(planner.cache_size(), 0u);
  planner.PlanRoute(0, {0, 0}, {0, 10});
  EXPECT_EQ(planner.cache_size(), 1u);
  EXPECT_EQ(planner.stats().cache_hits, 0);
  // Same OD pair later: a cache hit, no new entry.
  planner.PlanRoute(50, {0, 0}, {0, 10});
  EXPECT_EQ(planner.cache_size(), 1u);
  EXPECT_EQ(planner.stats().cache_hits, 1);
}

TEST_F(AcpPlannerTest, CachedRouteIsShortestWhenUncontested) {
  AcpPlanner planner(warehouse_.matrix);
  auto route = planner.PlanRoute(0, {0, 0}, {0, 10});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->length(), 11);
  EXPECT_EQ(route->WaitCount(), 0);
}

TEST_F(AcpPlannerTest, InsertsWaitsOnConflicts) {
  AcpPlanner planner(warehouse_.matrix);
  // Robot A crosses (0,5) while robot B wants to pass through it.
  auto a = planner.PlanRoute(0, {0, 0}, {0, 10});
  ASSERT_TRUE(a.has_value());
  auto b = planner.PlanRoute(0, {1, 5}, {0, 5});
  // B's target cell is occupied at the instant A passes; B waits or
  // escalates — either way the set stays clean.
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

TEST_F(AcpPlannerTest, EscalatesToAStarWhenWaitingFails) {
  AcpPlanner planner(warehouse_.matrix);
  // Head-on in a corridor: pure waiting on the cached path can never
  // resolve it, so ACP escalates.
  auto r1 = planner.PlanRoute(0, {0, 0}, {0, 12});
  auto r2 = planner.PlanRoute(0, {0, 12}, {0, 0});
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

TEST_F(AcpPlannerTest, CacheCountsTowardMemory) {
  AcpPlanner planner(warehouse_.matrix);
  const std::size_t before = planner.RetainedBytes();
  for (std::int32_t c = 1; c <= 20; ++c) {
    planner.PlanRoute(c, {0, 0}, {0, c});
  }
  EXPECT_EQ(planner.cache_size(), 20u);
  EXPECT_GT(planner.RetainedBytes(), before);
}

TEST_F(AcpPlannerTest, ResetClearsCache) {
  AcpPlanner planner(warehouse_.matrix);
  planner.PlanRoute(0, {0, 0}, {0, 5});
  planner.Reset();
  EXPECT_EQ(planner.cache_size(), 0u);
  EXPECT_TRUE(planner.committed_routes().empty());
}

TEST_F(AcpPlannerTest, WorkloadStaysCollisionFree) {
  AcpPlanner planner(warehouse_.matrix);
  workload::TaskGeneratorOptions topts;
  topts.task_count = 50;
  topts.day_length = 200;
  topts.seed = 55;
  const auto tasks = workload::GenerateTasks(
      warehouse_, workload::ArrivalProfile::Uniform(), topts);
  for (const auto& q : workload::FlattenToQueries(warehouse_, tasks)) {
    planner.PlanRoute(q.emergence, q.origin, q.destination);
  }
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
  EXPECT_GT(planner.stats().cache_hits, 0);
}

}  // namespace
}  // namespace carp::baselines
