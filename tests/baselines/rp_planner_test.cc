#include "baselines/rp_planner.h"

#include <gtest/gtest.h>

#include "core/collision.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "workload/request_stream.h"
#include "workload/task_generator.h"

namespace carp::baselines {
namespace {

using core::RouteSetValidator;

class RpPlannerTest : public ::testing::Test {
 protected:
  layout::Warehouse warehouse_ =
      layout::GenerateWarehouse(layout::PresetTiny());
};

TEST_F(RpPlannerTest, ObliviousPathCommittedWhenNoConflicts) {
  RpPlanner planner(warehouse_.matrix);
  auto route = planner.PlanRoute(0, {0, 0}, {0, 10});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->length(), 11);  // pure shortest path, no detours
  EXPECT_EQ(planner.stats().replans, 0);
}

TEST_F(RpPlannerTest, ConflictTriggersJointReplan) {
  RpPlanner planner(warehouse_.matrix);
  // First route crosses the corridor; second one would collide head-on.
  auto r1 = planner.PlanRoute(0, {0, 0}, {0, 10});
  ASSERT_TRUE(r1.has_value());
  auto r2 = planner.PlanRoute(0, {0, 10}, {0, 0});
  ASSERT_TRUE(r2.has_value());
  EXPECT_GE(planner.stats().replans, 1);
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

TEST_F(RpPlannerTest, ExecutingRoutesAreNeverRewritten) {
  RpPlanner planner(warehouse_.matrix);
  auto r1 = planner.PlanRoute(0, {0, 0}, {0, 10});
  ASSERT_TRUE(r1.has_value());
  // The conflicting query arrives later, while route 0 is executing:
  // route 0 must stay intact in the log.
  auto r2 = planner.PlanRoute(2, {0, 10}, {0, 0});
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(planner.committed_routes()[0], *r1);
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

TEST_F(RpPlannerTest, FutureRoutesMayBeRewritten) {
  RpPlanner planner(warehouse_.matrix);
  // Route that starts in the future (dispatch-delayed by a blocker).
  auto blocker = planner.PlanRoute(0, {0, 5}, {0, 5});
  ASSERT_TRUE(blocker.has_value());
  auto r1 = planner.PlanRoute(0, {0, 5}, {0, 9});  // starts at t>=1
  ASSERT_TRUE(r1.has_value());
  EXPECT_GE(r1->start_time(), 1);
  // Conflicting head-on query at t=0: the group {r1, new} may be jointly
  // replanned. Whatever happens, the final set must be clean.
  auto r2 = planner.PlanRoute(0, {0, 9}, {0, 5});
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

TEST_F(RpPlannerTest, WorkloadStaysCollisionFree) {
  RpPlanner planner(warehouse_.matrix);
  workload::TaskGeneratorOptions topts;
  topts.task_count = 40;
  topts.day_length = 150;  // dense -> many replans
  topts.seed = 31;
  const auto tasks = workload::GenerateTasks(
      warehouse_, workload::ArrivalProfile::Uniform(), topts);
  for (const auto& q : workload::FlattenToQueries(warehouse_, tasks)) {
    planner.PlanRoute(q.emergence, q.origin, q.destination);
  }
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
  EXPECT_EQ(planner.stats().failures, 0);
}

TEST_F(RpPlannerTest, ResetClearsReplanState) {
  RpPlanner planner(warehouse_.matrix);
  planner.PlanRoute(0, {0, 0}, {0, 5});
  planner.Reset();
  EXPECT_TRUE(planner.committed_routes().empty());
  auto route = planner.PlanRoute(0, {0, 0}, {0, 5});
  EXPECT_TRUE(route.has_value());
}

}  // namespace
}  // namespace carp::baselines
