// Request-stream service front-end: admission ordering, wave formation,
// retire/prune lifecycle, drain semantics, and determinism of the sharded
// pipeline across thread counts (ISSUE 7 tentpole; DESIGN.md §2h).

#include "service/planner_service.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "baselines/planner_factory.h"
#include "core/collision.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "srp/srp_planner.h"

namespace carp::service {
namespace {

const layout::Warehouse& Tiny() {
  static auto* w =
      new layout::Warehouse(layout::GenerateWarehouse(layout::PresetTiny()));
  return *w;
}

// Deterministic rack -> picker request stream with staggered releases.
std::vector<PlanRequest> MakeRequests(const layout::Warehouse& w, int count,
                                      TimeStep spread, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<PlanRequest> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    PlanRequest r;
    r.id = i;
    r.release_time =
        static_cast<TimeStep>(rng() % static_cast<std::uint64_t>(spread + 1));
    r.origin = w.rack_access[rng() % w.rack_access.size()];
    r.destination = w.pickers[rng() % w.pickers.size()];
    requests.push_back(r);
  }
  return requests;
}

TEST(RequestQueueTest, PopReadyOrdersByReleaseTimeThenId) {
  RequestQueue queue;
  queue.Push({/*id=*/2, /*release_time=*/5, {0, 0}, {0, 1}});
  queue.Push({/*id=*/1, /*release_time=*/5, {0, 0}, {0, 2}});
  queue.Push({/*id=*/0, /*release_time=*/9, {0, 0}, {0, 3}});
  queue.Push({/*id=*/3, /*release_time=*/1, {0, 0}, {0, 4}});
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_EQ(queue.NextReleaseTime(), 1);

  std::vector<PlanRequest> wave;
  EXPECT_EQ(queue.PopReady(/*now=*/5, wave), 3u);
  ASSERT_EQ(wave.size(), 3u);
  EXPECT_EQ(wave[0].id, 3);  // release 1
  EXPECT_EQ(wave[1].id, 1);  // release 5, lower id first
  EXPECT_EQ(wave[2].id, 2);
  EXPECT_EQ(queue.size(), 1u);

  wave.clear();
  EXPECT_EQ(queue.PopReady(/*now=*/8, wave), 0u);  // release 9 not due yet
  EXPECT_EQ(queue.PopReady(/*now=*/9, wave), 1u);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.NextReleaseTime(), std::nullopt);
}

TEST(PlannerServiceTest, StepPlansOnlyReleasedRequests) {
  srp::SrpPlanner planner(Tiny().matrix);
  ServiceOptions options;
  PlannerService svc(planner, options);

  svc.Submit({0, /*release_time=*/0, Tiny().rack_access[0], Tiny().pickers[0]});
  svc.Submit({1, /*release_time=*/3, Tiny().rack_access[1],
              Tiny().pickers[1 % Tiny().pickers.size()]});

  EXPECT_EQ(svc.Step(0), 1u);  // only request 0 released
  EXPECT_EQ(svc.queued(), 1u);
  EXPECT_EQ(svc.Step(1), 0u);  // nothing due: empty tick
  EXPECT_EQ(svc.Step(3), 1u);
  EXPECT_EQ(svc.queued(), 0u);

  EXPECT_EQ(svc.metrics().admitted, 2);
  EXPECT_EQ(svc.metrics().planned, 2);
  EXPECT_EQ(svc.metrics().failed, 0);
  EXPECT_EQ(svc.metrics().waves, 2);  // the empty tick forms no wave
  EXPECT_EQ(svc.archive().size(), 2u);
  EXPECT_TRUE(core::ValidateRoutes(svc.archive()));
  // One latency and one queue-delay sample per planned request.
  EXPECT_EQ(svc.metrics().latency_ms.size(), 2u);
  EXPECT_EQ(svc.metrics().queue_delay_steps.size(), 2u);
}

TEST(PlannerServiceTest, RunUntilDrainedPlansEveryRequest) {
  const auto requests = MakeRequests(Tiny(), 40, /*spread=*/60, /*seed=*/7);
  srp::SrpPlanner planner(Tiny().matrix);
  ServiceOptions options;
  options.threads = 4;
  PlannerService svc(planner, options);
  for (const auto& r : requests) svc.Submit(r);

  svc.RunUntilDrained();

  const auto& m = svc.metrics();
  EXPECT_EQ(m.admitted, 40);
  EXPECT_EQ(m.planned + m.failed, 40);
  EXPECT_EQ(m.failed, 0);
  EXPECT_EQ(svc.archive().size(), 40u);
  EXPECT_TRUE(core::ValidateRoutes(svc.archive()));
  EXPECT_GT(m.waves, 0);
  // Percentiles are well-defined once samples exist.
  EXPECT_GE(m.LatencyMsPercentile(0.99), m.LatencyMsPercentile(0.50));
  EXPECT_GE(m.QueueDelayPercentile(0.99), 0.0);
}

TEST(PlannerServiceTest, RetiringServiceReleasesStateButKeepsArchive) {
  const auto requests = MakeRequests(Tiny(), 30, /*spread=*/200, /*seed=*/11);
  srp::SrpPlanner planner(Tiny().matrix);
  ServiceOptions options;
  options.threads = 2;
  options.retire_routes = true;
  options.prune_every = 64;
  options.prune_slack = 8;
  PlannerService svc(planner, options);
  for (const auto& r : requests) svc.Submit(r);

  svc.RunUntilDrained();

  const auto& m = svc.metrics();
  EXPECT_EQ(m.planned, 30);
  // The drain's final tick retires everything the clock passed.
  EXPECT_EQ(m.routes_retired, 30);
  EXPECT_EQ(planner.live_routes(), 0u);
  EXPECT_EQ(planner.SegmentCount(), 0u);
  EXPECT_EQ(planner.CheckInvariants(), "");
  // History survives retirement.
  EXPECT_EQ(svc.archive().size(), 30u);
  EXPECT_TRUE(core::ValidateRoutes(svc.archive()));
}

TEST(PlannerServiceTest, ShardedServiceIsDeterministicAcrossThreadCounts) {
  const auto requests = MakeRequests(Tiny(), 36, /*spread=*/24, /*seed=*/23);

  std::vector<core::Route> reference;
  for (int threads : {1, 2, 8}) {
    srp::SrpPlanner planner(Tiny().matrix);
    ServiceOptions options;
    options.threads = threads;
    options.sharded_commit = true;
    PlannerService svc(planner, options);
    for (const auto& r : requests) svc.Submit(r);
    svc.RunUntilDrained();

    ASSERT_TRUE(core::ValidateRoutes(svc.archive())) << "threads=" << threads;
    if (threads == 1) {
      reference = svc.archive();
    } else {
      EXPECT_EQ(svc.archive(), reference) << "threads=" << threads;
      // Dense releases form multi-request waves, so the parallel service
      // actually exercised speculation and the sharded commit path.
      EXPECT_GT(svc.metrics().speculated, 0) << "threads=" << threads;
      EXPECT_GT(svc.metrics().shard_commits, 0) << "threads=" << threads;
    }
  }
}

TEST(PlannerServiceTest, ShardedAndSpeculativePipelinesAgreeOnGridBaseline) {
  const auto requests = MakeRequests(Tiny(), 24, /*spread=*/16, /*seed=*/5);

  std::vector<core::Route> spec_archive;
  for (const bool sharded : {false, true}) {
    auto planner = baselines::MakePlanner("SAP", Tiny().matrix);
    ServiceOptions options;
    options.threads = 4;
    options.sharded_commit = sharded;
    PlannerService svc(*planner, options);
    for (const auto& r : requests) svc.Submit(r);
    svc.RunUntilDrained();

    ASSERT_TRUE(core::ValidateRoutes(svc.archive()));
    EXPECT_EQ(svc.metrics().planned + svc.metrics().failed, 24);
    if (!sharded) {
      spec_archive = svc.archive();
    } else {
      // Sharded commit only changes who executes the mutation, never the
      // accept/reject decisions: archives must match byte for byte.
      EXPECT_EQ(svc.archive(), spec_archive);
      EXPECT_GT(svc.metrics().shard_commits, 0);
    }
  }
}

TEST(PlannerServiceTest, HeuristicPrefetchNeverChangesTheArchive) {
  // Submit-time prefetch (ISSUE 9 tentpole) warms tables on the service
  // pool; it must be invisible in the results — identical request streams
  // with prefetch on and off produce byte-identical archives.
  const auto requests = MakeRequests(Tiny(), 32, /*spread=*/40, /*seed=*/13);

  std::vector<core::Route> reference;
  for (const bool prefetch : {false, true}) {
    srp::SrpPlanner planner(Tiny().matrix);
    ServiceOptions options;
    options.threads = 2;
    options.prefetch_heuristics = prefetch;
    PlannerService svc(planner, options);
    for (const auto& r : requests) svc.Submit(r);
    svc.RunUntilDrained();

    ASSERT_TRUE(core::ValidateRoutes(svc.archive()));
    EXPECT_EQ(svc.metrics().planned + svc.metrics().failed, 32);
    if (!prefetch) {
      reference = svc.archive();
      EXPECT_EQ(planner.stats().heuristic_prefetch_scheduled, 0);
    } else {
      EXPECT_EQ(svc.archive(), reference);
      // Submit actually scheduled warm-ups on the pool.
      EXPECT_GT(planner.stats().heuristic_prefetch_scheduled, 0);
    }
  }
}

}  // namespace
}  // namespace carp::service
