// Background refinement under the service front-end (ISSUE 8 tentpole;
// DESIGN.md §2i): idle ticks spend CPU on LNS repairs of not-yet-started
// live routes, the archive stays collision-free, refinement never loses a
// request, and turning refinement off reproduces the unrefined schedule.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <vector>

#include "core/collision.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "service/planner_service.h"
#include "srp/srp_planner.h"

namespace carp::service {
namespace {

const layout::Warehouse& Tiny() {
  static auto* w =
      new layout::Warehouse(layout::GenerateWarehouse(layout::PresetTiny()));
  return *w;
}

// A bursty funnel stream with gaps between waves: every wave floods one
// picker area from a pool of just three racks, so origin contention
// forces dispatch delays that push start times past the wave instant
// (those not-yet-started routes are what an idle-tick refinement pass may
// touch), and the gaps give RunUntilDrained idle ticks to spend on it.
std::vector<PlanRequest> MakeBurstyRequests(int count, TimeStep gap,
                                            std::uint64_t seed) {
  const layout::Warehouse& w = Tiny();
  const GridCoord anchor = w.pickers.front();
  std::vector<GridCoord> racks = w.rack_access;
  std::sort(racks.begin(), racks.end(), [&](GridCoord a, GridCoord b) {
    const auto da = std::abs(static_cast<std::int64_t>(a.row) - anchor.row) +
                    std::abs(static_cast<std::int64_t>(a.col) - anchor.col);
    const auto db = std::abs(static_cast<std::int64_t>(b.row) - anchor.row) +
                    std::abs(static_cast<std::int64_t>(b.col) - anchor.col);
    return da != db ? da < db
                    : (a.row != b.row ? a.row < b.row : a.col < b.col);
  });
  std::mt19937_64 rng(seed);
  std::vector<PlanRequest> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    PlanRequest r;
    r.id = i;
    r.release_time = static_cast<TimeStep>(i / 6) * gap;
    r.origin = racks[rng() % std::min<std::size_t>(3, racks.size())];
    r.destination = w.pickers[rng() % std::min<std::size_t>(
                                          2, w.pickers.size())];
    requests.push_back(r);
  }
  return requests;
}

TEST(ServiceRefineTest, RefinementImprovesWithoutLosingRequests) {
  srp::SrpPlanner planner(Tiny().matrix);
  ServiceOptions options;
  options.threads = 2;
  options.refine = true;
  options.refine_neighborhood = 6;
  options.refine_iterations_per_tick = 4;
  PlannerService svc(planner, options);

  const auto requests = MakeBurstyRequests(30, /*gap=*/40, /*seed=*/5);
  for (const PlanRequest& r : requests) svc.Submit(r);
  svc.RunUntilDrained();

  EXPECT_EQ(svc.metrics().admitted, 30);
  EXPECT_EQ(svc.metrics().planned + svc.metrics().failed, 30);
  EXPECT_GT(svc.metrics().refine_iterations, 0);
  EXPECT_GE(svc.metrics().refine_cost_improvement, 0);
  EXPECT_TRUE(core::ValidateRoutes(svc.archive()));
  EXPECT_EQ(planner.CheckInvariants(), "");
}

TEST(ServiceRefineTest, RefineOffMatchesRefineNeverAccepted) {
  // Refinement only ever replaces routes that have not started executing,
  // and only for a strict cost drop — so the refined run must plan the
  // same number of requests as the unrefined run and end at a total cost
  // no worse.
  auto run = [](bool refine) {
    srp::SrpPlanner planner(Tiny().matrix);
    ServiceOptions options;
    options.refine = refine;
    options.refine_neighborhood = 6;
    options.refine_iterations_per_tick = 4;
    PlannerService svc(planner, options);
    for (const PlanRequest& r : MakeBurstyRequests(30, 40, 5)) svc.Submit(r);
    svc.RunUntilDrained();
    std::int64_t total = 0;
    for (const core::Route& route : svc.archive()) {
      total += planner.RouteCost(route);
    }
    return std::pair<std::int64_t, std::int64_t>(svc.metrics().planned,
                                                 total);
  };

  const auto [planned_off, cost_off] = run(false);
  const auto [planned_on, cost_on] = run(true);
  EXPECT_EQ(planned_on, planned_off);
  EXPECT_LE(cost_on, cost_off);
}

TEST(ServiceRefineTest, ShardedRecommitUnderThreadsStaysCoherent) {
  // The sharded-commit path guards the refiner's recommits (the TSan job
  // runs this test): pooled speculative repairs + sharded flushes must
  // leave the planner's invariants intact after a drained run.
  srp::SrpPlanner planner(Tiny().matrix);
  ServiceOptions options;
  options.threads = 3;
  options.sharded_commit = true;
  options.refine = true;
  options.refine_neighborhood = 5;
  options.refine_iterations_per_tick = 3;
  PlannerService svc(planner, options);

  for (const PlanRequest& r : MakeBurstyRequests(36, 32, 9)) svc.Submit(r);
  svc.RunUntilDrained();

  EXPECT_EQ(svc.metrics().admitted, 36);
  EXPECT_EQ(svc.metrics().planned + svc.metrics().failed, 36);
  EXPECT_GT(svc.metrics().refine_iterations, 0);
  EXPECT_TRUE(core::ValidateRoutes(svc.archive()));
  EXPECT_EQ(planner.CheckInvariants(), "");
}

}  // namespace
}  // namespace carp::service
