// Anytime LNS refiner (ISSUE 8 tentpole; DESIGN.md §2i): cost improvement,
// collision-freedom of the refined set, rejected-iteration no-ops, and the
// failed-repair rollback contract checked bit-identically against a twin
// planner that was never touched by the refiner.

#include "lns/lns_refiner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/collision.h"
#include "core/planner.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "srp/srp_planner.h"

namespace carp::lns {
namespace {

const layout::Warehouse& Tiny() {
  static auto* w =
      new layout::Warehouse(layout::GenerateWarehouse(layout::PresetTiny()));
  return *w;
}

std::int64_t Manhattan(GridCoord a, GridCoord b) {
  return std::abs(static_cast<std::int64_t>(a.row) - b.row) +
         std::abs(static_cast<std::int64_t>(a.col) - b.col);
}

// A congested funnel (the micro_lns workload scaled down): heterogeneous
// requests from the racks nearest one picker, staggered releases, planned
// first-feasible in submission order. The heterogeneity and the shared
// corridor region both matter — with identical OD pairs the greedy total
// is order-invariant and LNS has nothing to improve.
std::vector<LnsCandidate> PlanBurst(core::Planner& planner, int count) {
  const layout::Warehouse& w = Tiny();
  const GridCoord anchor = w.pickers.front();
  std::vector<GridCoord> racks = w.rack_access;
  std::sort(racks.begin(), racks.end(), [&](GridCoord a, GridCoord b) {
    const std::int64_t da = Manhattan(a, anchor), db = Manhattan(b, anchor);
    return da != db ? da < db : (a.row != b.row ? a.row < b.row
                                                : a.col < b.col);
  });
  const std::size_t pool = std::min<std::size_t>(16, racks.size());
  std::vector<LnsCandidate> live;
  for (int i = 0; i < count; ++i) {
    const GridCoord origin = racks[static_cast<std::size_t>(i * 3) % pool];
    const GridCoord dest =
        w.pickers[static_cast<std::size_t>(i) % std::min<std::size_t>(
                                                    2, w.pickers.size())];
    // Later releases are committed first (admission by id, not by release
    // time), so first-feasible interleaves badly and real slack exists
    // for the refiner to claw back.
    const TimeStep release = 3 - (i % 4);
    auto route = planner.PlanRoute(release, origin, dest);
    if (!route.has_value()) continue;
    live.push_back({*route, /*emerge=*/release});
  }
  return live;
}

std::vector<core::Route> RoutesOf(const std::vector<LnsCandidate>& live) {
  std::vector<core::Route> routes;
  routes.reserve(live.size());
  for (const LnsCandidate& c : live) routes.push_back(c.route);
  return routes;
}

std::int64_t TotalCost(const core::Planner& planner,
                       const std::vector<LnsCandidate>& live) {
  std::int64_t total = 0;
  for (const LnsCandidate& c : live) total += planner.RouteCost(c.route);
  return total;
}

TEST(LnsRefinerTest, SerialRefinementImprovesCostCollisionFree) {
  srp::SrpPlanner planner(Tiny().matrix);
  std::vector<LnsCandidate> live = PlanBurst(planner, 30);
  ASSERT_GE(live.size(), 8u);

  const std::int64_t base_cost = TotalCost(planner, live);
  LnsOptions options;
  options.neighborhood = 6;
  options.seed = 11;
  LnsRefiner refiner(planner, options);

  std::int64_t last_cost = base_cost;
  for (int i = 0; i < 200 && refiner.stats().accepted < 3; ++i) {
    if (refiner.Iterate(live)) {
      const std::int64_t cost = TotalCost(planner, live);
      EXPECT_LT(cost, last_cost);  // accepted repairs strictly improve
      last_cost = cost;
    }
  }
  ASSERT_GT(refiner.stats().accepted, 0);
  EXPECT_EQ(base_cost - last_cost, refiner.stats().cost_improvement);
  EXPECT_TRUE(core::ValidateRoutes(RoutesOf(live)));
  EXPECT_EQ(planner.CheckInvariants(), "");
}

TEST(LnsRefinerTest, RejectedIterationIsFingerprintNoOp) {
  srp::SrpPlanner planner(Tiny().matrix);
  std::vector<LnsCandidate> live = PlanBurst(planner, 12);
  ASSERT_GE(live.size(), 4u);

  LnsOptions options;
  options.neighborhood = 4;
  options.seed = 3;
  LnsRefiner refiner(planner, options);

  int rejected_seen = 0;
  for (int i = 0; i < 120 && rejected_seen < 5; ++i) {
    const std::uint64_t before = planner.StateFingerprint();
    if (!refiner.Iterate(live)) {
      EXPECT_EQ(planner.StateFingerprint(), before) << "iteration " << i;
      ++rejected_seen;
    }
  }
  EXPECT_GT(rejected_seen, 0);
}

TEST(LnsRefinerTest, EveryPinnedPolicyKeepsInvariants) {
  for (const NeighborhoodPolicy policy :
       {NeighborhoodPolicy::kRandom, NeighborhoodPolicy::kConflictHotspot,
        NeighborhoodPolicy::kStripLocality}) {
    srp::SrpPlanner planner(Tiny().matrix);
    std::vector<LnsCandidate> live = PlanBurst(planner, 12);
    ASSERT_GE(live.size(), 4u);

    LnsOptions options;
    options.neighborhood = 5;
    options.seed = 29;
    options.policy = policy;
    LnsRefiner refiner(planner, options);
    for (int i = 0; i < 40; ++i) refiner.Iterate(live);

    EXPECT_EQ(refiner.stats().iterations, 40)
        << static_cast<int>(policy);
    EXPECT_TRUE(core::ValidateRoutes(RoutesOf(live)))
        << static_cast<int>(policy);
    EXPECT_EQ(planner.CheckInvariants(), "") << static_cast<int>(policy);
  }
}

TEST(LnsRefinerTest, PooledSpeculativeShardedPathKeepsInvariants) {
  srp::SrpPlanner planner(Tiny().matrix);
  std::vector<LnsCandidate> live = PlanBurst(planner, 14);
  ASSERT_GE(live.size(), 4u);

  ThreadPool pool(2);
  LnsOptions options;
  options.neighborhood = 6;
  options.seed = 17;
  options.pool = &pool;
  options.sharded_commit = true;
  LnsRefiner refiner(planner, options);

  for (int i = 0; i < 60; ++i) {
    const std::uint64_t before = planner.StateFingerprint();
    if (!refiner.Iterate(live)) {
      EXPECT_EQ(planner.StateFingerprint(), before) << "iteration " << i;
    }
  }
  EXPECT_GT(refiner.stats().speculative_repairs, 0);
  EXPECT_TRUE(core::ValidateRoutes(RoutesOf(live)));
  EXPECT_EQ(planner.CheckInvariants(), "");
}

// Models an operator-blocked corridor: once tripped, every replan is
// infeasible, so the repair phase of the next iteration must fail and the
// refiner must roll the committed state back to exactly what it was.
class BlockedCorridorPlanner final : public core::Planner {
 public:
  explicit BlockedCorridorPlanner(srp::SrpPlanner& inner) : inner_(inner) {}

  std::optional<core::Route> PlanRoute(TimeStep now, GridCoord origin,
                                       GridCoord destination) override {
    if (blocked_) return std::nullopt;
    return inner_.PlanRoute(now, origin, destination);
  }
  void CommitRoute(const core::Route& route) override {
    inner_.CommitRoute(route);
  }
  bool ReleaseRoute(const core::Route& route) override {
    return inner_.ReleaseRoute(route);
  }
  bool SupportsExactRelease() const override { return true; }
  std::uint64_t StateFingerprint() const override {
    return inner_.StateFingerprint();
  }
  std::string_view name() const override { return "blocked-corridor"; }
  void Reset() override { inner_.Reset(); }
  std::size_t RetainedBytes() const override {
    return inner_.RetainedBytes();
  }

  void Block() { blocked_ = true; }

 private:
  srp::SrpPlanner& inner_;
  bool blocked_ = false;
};

TEST(LnsRefinerTest, FailedRepairRollsBackBitIdenticalToUntouchedTwin) {
  srp::SrpPlanner planner(Tiny().matrix);
  BlockedCorridorPlanner blocked(planner);
  std::vector<LnsCandidate> live = PlanBurst(blocked, 12);
  ASSERT_GE(live.size(), 4u);

  // Twin: replays the exact committed routes and is never refined. The SRP
  // commit path re-derives the canonical decomposition, so the twin is the
  // ground truth for "the rollback was a true no-op".
  srp::SrpPlanner twin(Tiny().matrix);
  for (const LnsCandidate& c : live) twin.CommitRoute(c.route);
  ASSERT_EQ(planner.StateFingerprint(), twin.StateFingerprint());

  LnsOptions options;
  options.neighborhood = 5;
  options.seed = 41;
  LnsRefiner refiner(blocked, options);

  blocked.Block();
  const std::vector<core::Route> before = RoutesOf(live);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(refiner.Iterate(live));  // every repair is infeasible
  }
  EXPECT_EQ(refiner.stats().failed_repairs, 10);
  EXPECT_EQ(refiner.stats().rollbacks, 10);
  EXPECT_EQ(refiner.stats().accepted, 0);

  // Bit-identity: fingerprint, segment census, and the candidates
  // themselves all match the never-touched twin.
  EXPECT_EQ(planner.StateFingerprint(), twin.StateFingerprint());
  EXPECT_EQ(planner.SegmentCount(), twin.SegmentCount());
  EXPECT_EQ(planner.CheckInvariants(), "");
  ASSERT_EQ(live.size(), before.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].route.cells(), before[i].cells()) << i;
  }
}

}  // namespace
}  // namespace carp::lns
