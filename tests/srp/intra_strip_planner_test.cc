#include "srp/intra_strip_planner.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "srp/segment_index.h"

namespace carp::srp {
namespace {

using geometry::Segment;

// Checks the plan is internally consistent: contiguous segments,
// monotonic movement toward the target, and collision-free against the
// store it was planned on.
void CheckPlan(const SegmentStore& store, const IntraPlan& plan,
               TimeStep start, std::int64_t from, std::int64_t to) {
  ASSERT_FALSE(plan.segments.empty());
  EXPECT_EQ(plan.segments.front().start().t, start);
  EXPECT_EQ(plan.segments.front().start().pos, from);
  EXPECT_EQ(plan.segments.back().finish().pos, to);
  EXPECT_EQ(plan.arrival, plan.segments.back().finish().t);
  const int dir = to > from ? 1 : (to < from ? -1 : 0);
  for (std::size_t i = 0; i < plan.segments.size(); ++i) {
    const Segment& seg = plan.segments[i];
    if (i > 0) {
      EXPECT_EQ(plan.segments[i - 1].finish(), seg.start());
    }
    // No backward movement (Sec. V-C restriction).
    if (dir != 0) {
      EXPECT_TRUE(seg.slope() == 0 || seg.slope() == dir)
          << "segment " << seg << " moves backward";
    }
    EXPECT_EQ(store.EarliestCollisionTime(seg), kInfiniteTime)
        << "planned segment collides: " << seg;
  }
}

class IntraStripPlannerTest : public ::testing::Test {
 protected:
  IndexedSegmentStore store_;
  IntraPlanOptions options_;
};

TEST_F(IntraStripPlannerTest, EmptyStripDirectMove) {
  auto plan = PlanWithinStrip(store_, 5, 2, 9, options_);
  ASSERT_TRUE(plan.has_value());
  CheckPlan(store_, *plan, 5, 2, 9);
  EXPECT_EQ(plan->arrival, 12);  // 7 moves, no waits
  EXPECT_EQ(plan->segments.size(), 1u);
}

TEST_F(IntraStripPlannerTest, BackwardDirectionSupported) {
  auto plan = PlanWithinStrip(store_, 0, 9, 3, options_);
  ASSERT_TRUE(plan.has_value());
  CheckPlan(store_, *plan, 0, 9, 3);
  EXPECT_EQ(plan->arrival, 6);
}

TEST_F(IntraStripPlannerTest, AlreadyThereYieldsPointSegment) {
  auto plan = PlanWithinStrip(store_, 7, 4, 4, options_);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->segments.size(), 1u);
  EXPECT_TRUE(plan->segments[0].is_point());
  EXPECT_EQ(plan->arrival, 7);
}

TEST_F(IntraStripPlannerTest, WaitsForOpposingTraffic) {
  // Oncoming robot sweeps 10 -> 5 over t=0..5 and then leaves the strip;
  // we go 0 -> 10 from t=0. Meeting it head-on is avoided by waiting one
  // step and letting it exit first.
  store_.Insert(Segment({0, 10}, {5, 5}));
  auto plan = PlanWithinStrip(store_, 0, 0, 10, options_);
  ASSERT_TRUE(plan.has_value());
  CheckPlan(store_, *plan, 0, 0, 10);
  EXPECT_GT(plan->arrival, 10);  // must have waited
}

TEST_F(IntraStripPlannerTest, FullCorridorHeadOnIsInfeasible) {
  // Oncoming robot traverses the whole strip 10 -> 0 over t=0..10 while
  // we need 0 -> 10: without backward moves two robots cannot pass in a
  // 1-D corridor, so intra-strip planning must fail (the inter-strip
  // level or the A* fallback resolves such cases by leaving the strip).
  store_.Insert(Segment({0, 10}, {10, 0}));
  auto plan = PlanWithinStrip(store_, 0, 0, 10, options_);
  EXPECT_FALSE(plan.has_value());
}

TEST_F(IntraStripPlannerTest, WaitsOutAParkedRobotAhead) {
  // A robot occupies pos 5 for t in [0, 6]; we pass through it.
  store_.Insert(Segment({0, 5}, {6, 5}));
  auto plan = PlanWithinStrip(store_, 0, 0, 9, options_);
  ASSERT_TRUE(plan.has_value());
  CheckPlan(store_, *plan, 0, 0, 9);
  // Cannot be at pos 5 before t=7: arrival >= 7 + 4.
  EXPECT_GE(plan->arrival, 11);
}

TEST_F(IntraStripPlannerTest, NoWaitWhenFollowingAhead) {
  // Robot ahead moving the same direction one step ahead of us: legal
  // following, no waits needed.
  store_.Insert(Segment({0, 1}, {9, 10}));
  auto plan = PlanWithinStrip(store_, 0, 0, 9, options_);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->arrival, 9);
  EXPECT_EQ(plan->segments.size(), 1u);
}

TEST_F(IntraStripPlannerTest, FailsWhenOriginPermanentlyBoxedIn) {
  // Robot parked right ahead for a very long time and the waiting spot
  // is swept repeatedly, exhausting the budgets.
  store_.Insert(Segment({0, 1}, {100000, 1}));
  options_.max_wait = 16;
  options_.max_stops = 4;
  options_.max_probes = 256;
  auto plan = PlanWithinStrip(store_, 0, 0, 5, options_);
  EXPECT_FALSE(plan.has_value());
}

TEST_F(IntraStripPlannerTest, StopsBeforeCollisionThenProceeds) {
  // A crossing robot occupies pos 6 exactly at t=6 (our arrival instant
  // if we go straight from pos 0 at t=0). One wait resolves it.
  store_.Insert(Segment({6, 6}, {6, 6}));
  auto plan = PlanWithinStrip(store_, 0, 0, 9, options_);
  ASSERT_TRUE(plan.has_value());
  CheckPlan(store_, *plan, 0, 0, 9);
  EXPECT_EQ(plan->arrival, 10);  // exactly one wait inserted
}

TEST_F(IntraStripPlannerTest, ProbeBudgetRespected) {
  options_.max_probes = 1;
  store_.Insert(Segment({0, 5}, {50, 5}));
  auto plan = PlanWithinStrip(store_, 0, 0, 9, options_);
  EXPECT_FALSE(plan.has_value());
}

// Property test: against random congestion, any returned plan must be
// collision-free, monotone, and contiguous.
class IntraPlannerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IntraPlannerPropertyTest, PlansAreAlwaysConsistent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 5);
  for (int iter = 0; iter < 80; ++iter) {
    IndexedSegmentStore store;
    const std::int64_t strip_len = 12;
    const int population = static_cast<int>(rng.UniformU32(12));
    for (int i = 0; i < population; ++i) {
      const TimeStep t0 = rng.UniformInt(0, 30);
      const std::int64_t p0 = rng.UniformInt(0, strip_len - 1);
      const TimeStep dur = rng.UniformInt(0, 8);
      const int slope = static_cast<int>(rng.UniformInt(-1, 1));
      std::int64_t p1 = p0 + slope * dur;
      if (p1 < 0 || p1 >= strip_len) p1 = p0;
      store.Insert(Segment({t0, p0}, {t0 + dur, p1}));
    }
    const std::int64_t from = rng.UniformInt(0, strip_len - 1);
    const std::int64_t to = rng.UniformInt(0, strip_len - 1);
    const TimeStep start = rng.UniformInt(0, 10);
    if (store.OccupiedAt(from, start)) continue;  // illegal query state
    IntraPlanOptions options;
    auto plan = PlanWithinStrip(store, start, from, to, options);
    if (plan.has_value()) {
      CheckPlan(store, *plan, start, from, to);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntraPlannerPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace carp::srp
