// ISSUE 8 satellite: audit of ShardedCrossings' departure-strip-only
// ownership (see the safety argument in srp/shard_map.h).
//
//  - The footprint half of the argument, pinned as a unit test: the shard
//    footprint a sharded commit locks contains BOTH endpoint strips' shards
//    of every boundary crossing the route records, so two commits that can
//    touch the same per-shard registry always share a lock.
//  - The concurrency half, pinned as a TSan regression: opposite-direction
//    committers running truly concurrently over overlapping footprints,
//    with registry reads only at the pipeline's quiescent points, end
//    bit-identical to the serial twin.

#include <gtest/gtest.h>

#include <algorithm>
#include <barrier>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/collision.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "srp/shard_map.h"
#include "srp/srp_planner.h"
#include "srp/strip_graph.h"

namespace carp::srp {
namespace {

const layout::Warehouse& Tiny() {
  static auto* w =
      new layout::Warehouse(layout::GenerateWarehouse(layout::PresetTiny()));
  return *w;
}

srp::SrpPlannerOptions ShardedOptions() {
  SrpPlannerOptions options;
  options.commit_shards = 8;
  return options;
}

TEST(ShardedCrossingsTest, FootprintCoversBothShardsOfEveryCrossing) {
  SrpPlanner planner(Tiny().matrix, ShardedOptions());
  const StripGraph& graph = planner.strip_graph();
  const ShardMap& map = planner.shard_map();

  const std::int32_t h = Tiny().matrix.height();
  const std::int32_t w = Tiny().matrix.width();
  int crossings_checked = 0;
  for (int i = 0; i < 8; ++i) {
    const GridCoord origin{(i % 2 == 0) ? 0 : h - 1, i};
    const GridCoord dest{(i % 2 == 0) ? h - 1 : 0, w - 1 - i};
    const auto route = planner.PlanRoute(0, origin, dest);
    ASSERT_TRUE(route.has_value()) << i;

    std::vector<std::uint32_t> footprint;
    planner.ComputeShardFootprint(*route, footprint);
    ASSERT_FALSE(footprint.empty());

    const auto& cells = route->cells();
    for (std::size_t j = 0; j + 1 < cells.size(); ++j) {
      if (cells[j] == cells[j + 1]) continue;  // dwell, not a move
      const StripId depart = graph.StripOf(cells[j]);
      const StripId arrive = graph.StripOf(cells[j + 1]);
      if (depart == arrive) continue;  // intra-strip move, no crossing
      ++crossings_checked;
      const std::uint32_t depart_shard = map.ShardOf(depart);
      const std::uint32_t arrive_shard = map.ShardOf(arrive);
      EXPECT_NE(std::find(footprint.begin(), footprint.end(), depart_shard),
                footprint.end())
          << "route " << i << " crossing at step " << j
          << ": departure (owner) shard missing from footprint";
      EXPECT_NE(std::find(footprint.begin(), footprint.end(), arrive_shard),
                footprint.end())
          << "route " << i << " crossing at step " << j
          << ": arrival shard missing from footprint";
    }
  }
  // The warehouse has many strips, so cross-warehouse routes must have
  // produced real boundary crossings for the pin to mean anything.
  EXPECT_GT(crossings_checked, 10);
}

TEST(ShardedCrossingsTest, OppositeDirectionConcurrentCommitsMatchSerial) {
  // Serial twin: plans (and commits) the routes one by one.
  SrpPlanner twin(Tiny().matrix, ShardedOptions());
  const std::int32_t h = Tiny().matrix.height();
  const std::int32_t w = Tiny().matrix.width();
  std::vector<core::Route> routes;
  for (int i = 0; i < 8; ++i) {
    // Alternating directions through the same corridor region, so the
    // per-shard registries see crossings recorded from both sides.
    const GridCoord origin{(i % 2 == 0) ? 0 : h - 1, 2 * i};
    const GridCoord dest{(i % 2 == 0) ? h - 1 : 0, w - 1 - 2 * i};
    const auto route = twin.PlanRoute(i, origin, dest);
    ASSERT_TRUE(route.has_value()) << i;
    routes.push_back(*route);
  }

  // Concurrent replay: tickets issued serially, commits raced across two
  // threads (shard locks serialize exactly the overlapping footprints),
  // notes and flush serial again — the pipeline's phase discipline.
  SrpPlanner planner(Tiny().matrix, ShardedOptions());
  std::vector<std::uint64_t> tickets;
  tickets.reserve(routes.size());
  for (const core::Route& route : routes) {
    tickets.push_back(planner.BeginShardedCommit(route));
  }

  std::barrier gate(2);
  auto committer = [&](int lane) {
    gate.arrive_and_wait();
    for (std::size_t i = static_cast<std::size_t>(lane); i < routes.size();
         i += 2) {
      planner.CommitRouteSharded(routes[i], tickets[i]);
    }
  };
  std::thread t0(committer, 0);
  std::thread t1(committer, 1);
  t0.join();
  t1.join();

  for (std::size_t i = 0; i < routes.size(); ++i) {
    planner.NoteShardedCommitted(routes[i], tickets[i]);
  }
  planner.OnShardedFlush();

  // Quiescent-point reads: the registry digest (inside StateFingerprint),
  // the segment census, and the full invariant audit all agree with the
  // serial twin, independent of commit interleaving.
  EXPECT_EQ(planner.StateFingerprint(), twin.StateFingerprint());
  EXPECT_EQ(planner.SegmentCount(), twin.SegmentCount());
  EXPECT_EQ(planner.CheckInvariants(), "");
  EXPECT_TRUE(core::ValidateRoutes(routes));
}

}  // namespace
}  // namespace carp::srp
