#include "srp/srp_planner.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/collision.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "workload/request_stream.h"
#include "workload/task_generator.h"

namespace carp::srp {
namespace {

using core::RouteSetValidator;

class SrpPlannerTest : public ::testing::Test {
 protected:
  layout::Warehouse warehouse_ =
      layout::GenerateWarehouse(layout::PresetTiny());
};

TEST_F(SrpPlannerTest, SingleRouteOnEmptyWarehouseIsShortest) {
  SrpPlanner planner(warehouse_.matrix);
  // Both endpoints on the (open) margin ring rows.
  const GridCoord origin{0, 0};
  const GridCoord dest{0, 20};
  auto route = planner.PlanRoute(0, origin, dest);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->length(), ManhattanDistance(origin, dest) + 1);
  EXPECT_TRUE(route->IsKinematicallyValid(warehouse_.matrix));
}

TEST_F(SrpPlannerTest, CrossWarehouseRouteValid) {
  SrpPlanner planner(warehouse_.matrix);
  const GridCoord origin{0, 0};
  const GridCoord dest{warehouse_.matrix.height() - 1,
                       warehouse_.matrix.width() - 1};
  auto route = planner.PlanRoute(0, origin, dest);
  ASSERT_TRUE(route.has_value());
  EXPECT_TRUE(route->IsKinematicallyValid(warehouse_.matrix));
  EXPECT_EQ(route->origin(), origin);
  EXPECT_EQ(route->destination(), dest);
}

TEST_F(SrpPlannerTest, RejectsRackEndpoints) {
  SrpPlanner planner(warehouse_.matrix);
  ASSERT_FALSE(warehouse_.racks.empty());
  auto route = planner.PlanRoute(0, {0, 0}, warehouse_.racks[0]);
  EXPECT_FALSE(route.has_value());
  EXPECT_EQ(planner.stats().failures, 1);
}

TEST_F(SrpPlannerTest, SameCellQueryYieldsSingleCellRoute) {
  SrpPlanner planner(warehouse_.matrix);
  auto route = planner.PlanRoute(5, {0, 3}, {0, 3});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->length(), 1);
  EXPECT_EQ(route->start_time(), 5);
}

TEST_F(SrpPlannerTest, DispatchDelayWhenOriginBusy) {
  SrpPlanner planner(warehouse_.matrix);
  // Park a route across cell (0,5) at t=0..10 by planning a slow walk.
  auto blocker = planner.PlanRoute(0, {0, 5}, {0, 5});
  ASSERT_TRUE(blocker.has_value());
  // A new query from the same cell at the same instant must start later.
  auto route = planner.PlanRoute(0, {0, 5}, {0, 9});
  ASSERT_TRUE(route.has_value());
  EXPECT_GT(route->start_time(), 0);
  EXPECT_TRUE(RouteSetValidator::IsCollisionFree(
      planner.committed_routes()));
}

TEST_F(SrpPlannerTest, ResetClearsState) {
  SrpPlanner planner(warehouse_.matrix);
  planner.PlanRoute(0, {0, 0}, {0, 9});
  EXPECT_EQ(planner.committed_routes().size(), 1u);
  EXPECT_GT(planner.SegmentCount(), 0u);
  planner.Reset();
  EXPECT_TRUE(planner.committed_routes().empty());
  EXPECT_EQ(planner.SegmentCount(), 0u);
  EXPECT_EQ(planner.stats().queries, 0);
}

TEST_F(SrpPlannerTest, TimeBreakdownAccumulates) {
  SrpPlannerOptions options;
  options.enable_time_breakdown = true;
  SrpPlanner planner(warehouse_.matrix, options);
  for (int i = 0; i < 10; ++i) {
    planner.PlanRoute(i, {0, 0}, {39, 29});
  }
  const SrpTimeBreakdown b = planner.time_breakdown();
  EXPECT_GT(b.intra_seconds + b.inter_seconds + b.conversion_seconds, 0.0);
}

TEST_F(SrpPlannerTest, RetainedBytesTrackSegments) {
  SrpPlanner planner(warehouse_.matrix);
  const std::size_t before = planner.RetainedBytes();
  for (int i = 0; i < 20; ++i) {
    planner.PlanRoute(i * 3, {0, 0}, {39, 29});
  }
  EXPECT_GT(planner.RetainedBytes(), before);
}

// The central correctness property (Def. 3): whatever the workload, the
// committed route set is collision-free. Parameterized over seeds, store
// variants and congestion levels.
struct WorkloadParam {
  int seed;
  int tasks;
  bool use_index;
  TimeStep day_length;
};

class SrpWorkloadTest : public ::testing::TestWithParam<WorkloadParam> {};

TEST_P(SrpWorkloadTest, CommittedRoutesAlwaysCollisionFree) {
  const WorkloadParam& p = GetParam();
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  SrpPlannerOptions options;
  options.use_slope_index = p.use_index;
  SrpPlanner planner(warehouse.matrix, options);

  workload::TaskGeneratorOptions topts;
  topts.task_count = p.tasks;
  topts.day_length = p.day_length;
  topts.seed = static_cast<std::uint64_t>(p.seed);
  const auto tasks = workload::GenerateTasks(
      warehouse, workload::ArrivalProfile::Uniform(), topts);
  const auto queries = workload::FlattenToQueries(warehouse, tasks);

  int planned = 0;
  for (const auto& q : queries) {
    auto route = planner.PlanRoute(q.emergence, q.origin, q.destination);
    if (route.has_value()) {
      ++planned;
      EXPECT_TRUE(route->IsKinematicallyValid(warehouse.matrix));
    }
  }
  EXPECT_GT(planned, static_cast<int>(queries.size() * 9) / 10);
  EXPECT_TRUE(RouteSetValidator::IsCollisionFree(planner.committed_routes()))
      << "seed=" << p.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SrpWorkloadTest,
    ::testing::Values(WorkloadParam{1, 40, true, 200},
                      WorkloadParam{2, 40, true, 100},
                      WorkloadParam{3, 80, true, 400},
                      WorkloadParam{4, 25, true, 50},   // heavy congestion
                      WorkloadParam{5, 40, false, 200},
                      WorkloadParam{6, 25, false, 50},
                      WorkloadParam{7, 120, true, 1000},
                      WorkloadParam{8, 60, false, 300}));

// Every option combination must preserve the collision-free invariant.
struct OptionParam {
  bool static_first;
  bool goal_heuristic;
  double weight;
  std::int64_t slack;
};

class SrpOptionSweepTest : public ::testing::TestWithParam<OptionParam> {};

TEST_P(SrpOptionSweepTest, OptionsPreserveSafety) {
  const OptionParam& p = GetParam();
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  SrpPlannerOptions options;
  options.use_static_first = p.static_first;
  options.use_goal_heuristic = p.goal_heuristic;
  options.heuristic_weight = p.weight;
  options.detour_slack = p.slack;
  SrpPlanner planner(warehouse.matrix, options);

  workload::TaskGeneratorOptions topts;
  topts.task_count = 35;
  topts.day_length = 120;
  topts.seed = 71;
  const auto tasks = workload::GenerateTasks(
      warehouse, workload::ArrivalProfile::Uniform(), topts);
  const auto queries = workload::FlattenToQueries(warehouse, tasks);
  int planned = 0;
  for (const auto& q : queries) {
    auto route = planner.PlanRoute(q.emergence, q.origin, q.destination);
    if (route.has_value()) {
      ++planned;
      EXPECT_TRUE(route->IsKinematicallyValid(warehouse.matrix));
    }
  }
  EXPECT_GT(planned, static_cast<int>(queries.size() * 9) / 10);
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

INSTANTIATE_TEST_SUITE_P(
    Options, SrpOptionSweepTest,
    ::testing::Values(OptionParam{false, true, 1.25, 6},   // defaults
                      OptionParam{true, true, 1.25, 6},    // static-first
                      OptionParam{false, false, 1.0, -1},  // pure Dijkstra
                      OptionParam{false, true, 1.0, -1},   // admissible A*
                      OptionParam{false, true, 2.0, 3},    // tight + greedy
                      OptionParam{true, false, 1.0, -1}));

TEST(SrpStaticFirstTest, UsesStaticChainsWhenUncontested) {
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  SrpPlannerOptions options;
  options.use_static_first = true;
  SrpPlanner planner(warehouse.matrix, options);
  // Far-apart emergence times: no congestion, so every query should go
  // through the probe-free static chain.
  for (int i = 0; i < 10; ++i) {
    auto route = planner.PlanRoute(i * 1000, {0, 0}, {39, 29});
    ASSERT_TRUE(route.has_value());
  }
  EXPECT_EQ(planner.stats().static_path_hits, 10);
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

TEST(SrpPlannerVariantsTest, IndexAndNaiveProduceIdenticalRoutes) {
  // The slope index is purely an accelerator: identical query streams must
  // yield identical routes.
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  SrpPlannerOptions with_index;
  with_index.use_slope_index = true;
  SrpPlannerOptions without_index;
  without_index.use_slope_index = false;
  SrpPlanner a(warehouse.matrix, with_index);
  SrpPlanner b(warehouse.matrix, without_index);

  workload::TaskGeneratorOptions topts;
  topts.task_count = 60;
  topts.day_length = 300;
  topts.seed = 99;
  const auto tasks = workload::GenerateTasks(
      warehouse, workload::ArrivalProfile::Uniform(), topts);
  const auto queries = workload::FlattenToQueries(warehouse, tasks);
  for (const auto& q : queries) {
    auto ra = a.PlanRoute(q.emergence, q.origin, q.destination);
    auto rb = b.PlanRoute(q.emergence, q.origin, q.destination);
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (ra.has_value()) {
      EXPECT_EQ(*ra, *rb);
    }
  }
}

TEST(SrpPrefetchTest, PrefetchTimingNeverChangesRoutes) {
  // Determinism pin for DESIGN.md §2j: heuristic prefetch only moves *when*
  // a table builds, never what it holds, so identical query streams with
  // prefetch off, prefetch warmed, and prefetch racing the queries must
  // leave bit-identical planner state.
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  workload::TaskGeneratorOptions topts;
  topts.task_count = 60;
  topts.day_length = 300;
  topts.seed = 77;
  const auto tasks = workload::GenerateTasks(
      warehouse, workload::ArrivalProfile::Uniform(), topts);
  const auto queries = workload::FlattenToQueries(warehouse, tasks);

  SrpPlannerOptions options;
  options.heuristic = core::HeuristicMode::kTable;

  // Run 1: cold — no prefetch at all.
  SrpPlanner cold(warehouse.matrix, options);
  for (const auto& q : queries) {
    cold.PlanRoute(q.emergence, q.origin, q.destination);
  }

  // Run 2: fully warmed — every destination prefetched and settled first.
  SrpPlanner warm(warehouse.matrix, options);
  {
    ThreadPool pool(2);
    for (const auto& q : queries) {
      warm.PrefetchHeuristic(q.destination, &pool);
    }
    pool.WaitIdle();
    for (const auto& q : queries) {
      warm.PlanRoute(q.emergence, q.origin, q.destination);
    }
  }

  // Run 3: raced — prefetches interleave with the queries, never awaited.
  SrpPlanner raced(warehouse.matrix, options);
  {
    ThreadPool pool(2);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      raced.PrefetchHeuristic(queries[(i + 3) % queries.size()].destination,
                              &pool);
      raced.PlanRoute(queries[i].emergence, queries[i].origin,
                      queries[i].destination);
    }
    pool.WaitIdle();
  }

  EXPECT_EQ(cold.StateFingerprint(), warm.StateFingerprint());
  EXPECT_EQ(cold.StateFingerprint(), raced.StateFingerprint());
  ASSERT_EQ(cold.committed_routes().size(), warm.committed_routes().size());
  ASSERT_EQ(cold.committed_routes().size(), raced.committed_routes().size());
  // The warmed run's tables were scheduled by the prefetcher.
  EXPECT_GT(warm.stats().heuristic_prefetch_scheduled, 0);
}

TEST(SrpPlannerFallbackTest, FallbacksAreRare) {
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetSmall());
  SrpPlanner planner(warehouse.matrix);
  workload::TaskGeneratorOptions topts;
  topts.task_count = 150;
  topts.day_length = 1500;
  topts.seed = 5;
  const auto tasks = workload::GenerateTasks(
      warehouse, workload::ArrivalProfile::Uniform(), topts);
  const auto queries = workload::FlattenToQueries(warehouse, tasks);
  for (const auto& q : queries) {
    planner.PlanRoute(q.emergence, q.origin, q.destination);
  }
  // The paper reports ~1e-5; we allow a generous margin on a tiny map.
  EXPECT_LT(planner.stats().fallbacks, planner.stats().queries / 20);
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner.committed_routes()));
}

TEST(SrpSpeculationTest, QueryWithoutCommitLeavesPlannerUntouched) {
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  SrpPlanner planner(warehouse.matrix);
  // Commit some background traffic, then snapshot the committed state.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(planner.PlanRoute(i, {0, i}, {39, 29 - i}).has_value());
  }
  const std::size_t segments = planner.SegmentCount();
  const std::size_t retained = planner.RetainedBytes();
  const std::size_t committed = planner.committed_routes().size();

  ASSERT_TRUE(planner.SupportsSpeculation());
  auto context = planner.MakeQueryContext();
  ASSERT_NE(context, nullptr);
  auto speculative = planner.QueryRoute(*context, 0, {1, 0}, {39, 20});
  ASSERT_TRUE(speculative.has_value());

  // Pure query: no segments, no bytes, no routes committed.
  EXPECT_EQ(planner.SegmentCount(), segments);
  EXPECT_EQ(planner.RetainedBytes(), retained);
  EXPECT_EQ(planner.committed_routes().size(), committed);

  // Subsequent serial planning is unaffected by the uncommitted query: a
  // twin planner fed only the committed traffic produces the same route.
  SrpPlanner twin(warehouse.matrix);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(twin.PlanRoute(i, {0, i}, {39, 29 - i}).has_value());
  }
  auto after = planner.PlanRoute(10, {0, 20}, {39, 0});
  auto twin_after = twin.PlanRoute(10, {0, 20}, {39, 0});
  ASSERT_TRUE(after.has_value());
  ASSERT_TRUE(twin_after.has_value());
  EXPECT_EQ(*after, *twin_after);
}

TEST(SrpSpeculationTest, QueryMatchesSerialAgainstSameSnapshot) {
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  SrpPlanner planner(warehouse.matrix);
  SrpPlanner reference(warehouse.matrix);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(planner.PlanRoute(i, {0, i}, {39, 29 - i}).has_value());
    ASSERT_TRUE(reference.PlanRoute(i, {0, i}, {39, 29 - i}).has_value());
  }
  auto context = planner.MakeQueryContext();
  auto speculative = planner.QueryRoute(*context, 6, {1, 0}, {39, 20});
  auto serial = reference.PlanRoute(6, {1, 0}, {39, 20});
  ASSERT_TRUE(speculative.has_value());
  ASSERT_TRUE(serial.has_value());
  EXPECT_EQ(*speculative, *serial);
}

TEST(SrpSpeculationTest, CommitRouteMatchesSerialCommit) {
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  SrpPlanner split(warehouse.matrix);
  SrpPlanner serial(warehouse.matrix);

  auto context = split.MakeQueryContext();
  auto route = split.QueryRoute(*context, 0, {0, 0}, {39, 29});
  ASSERT_TRUE(route.has_value());
  split.CommitRoute(*route);
  split.AbsorbQueryContext(*context);

  ASSERT_TRUE(serial.PlanRoute(0, {0, 0}, {39, 29}).has_value());

  EXPECT_EQ(split.committed_routes(), serial.committed_routes());
  EXPECT_EQ(split.SegmentCount(), serial.SegmentCount());
  // The committed state constrains later queries identically.
  auto a = split.PlanRoute(1, {0, 5}, {39, 20});
  auto b = serial.PlanRoute(1, {0, 5}, {39, 20});
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
}

TEST(SrpSpeculationTest, AbsorbFoldsContextStatsOnce) {
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  SrpPlanner planner(warehouse.matrix);
  auto context = planner.MakeQueryContext();
  ASSERT_TRUE(
      planner.QueryRoute(*context, 0, {0, 0}, {39, 29}).has_value());
  EXPECT_EQ(planner.stats().queries, 0);
  planner.AbsorbQueryContext(*context);
  EXPECT_EQ(planner.stats().queries, 1);
  planner.AbsorbQueryContext(*context);  // counters were reset: no-op
  EXPECT_EQ(planner.stats().queries, 1);
}

TEST(SrpOptionsTest, CallerOptionsAreNeverMutated) {
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  SrpPlannerOptions options;
  options.fallback.horizon = 0;  // "derive from the warehouse"
  SrpPlanner derived(warehouse.matrix, options);
  EXPECT_EQ(derived.options().fallback.horizon, 0);
  EXPECT_GE(derived.effective_fallback_horizon(),
            4 * (warehouse.matrix.height() + warehouse.matrix.width()));

  options.fallback.horizon = 7;  // tiny caller-chosen horizon
  SrpPlanner floored(warehouse.matrix, options);
  EXPECT_EQ(floored.options().fallback.horizon, 7);
  EXPECT_GE(floored.effective_fallback_horizon(),
            4 * (warehouse.matrix.height() + warehouse.matrix.width()));
}

}  // namespace
}  // namespace carp::srp
