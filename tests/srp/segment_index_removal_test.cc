// Regression coverage for IndexedSegmentStore::Remove over duplicate
// by_line entries: when the same segment (or two segments sharing a line
// key and start time) is committed more than once, lower_bound lands on
// the first matching entry — which may be a tombstoned copy from an
// earlier removal. Remove must walk past tombstones to a live copy
// instead of falling through (the fall-through used to silently report
// success; it is now a CARP_CHECK failure).
#include <gtest/gtest.h>

#include "geometry/segment.h"
#include "srp/segment_index.h"

namespace carp::srp {
namespace {

TEST(IndexedSegmentStoreRemoval, RemoveThroughTombstonedExactDuplicate) {
  IndexedSegmentStore store;
  const geometry::Segment seg({0, 0}, {4, 4});  // slope +1, one line key

  store.Insert(seg);
  store.Insert(seg);
  ASSERT_EQ(store.size(), 2u);
  ASSERT_EQ(store.CheckInvariants(), "");

  // First removal tombstones the first by_line copy.
  EXPECT_TRUE(store.Remove(seg));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.CheckInvariants(), "");
  EXPECT_TRUE(store.OccupiedAt(2, 2));

  // Second removal: lower_bound lands exactly on the tombstoned first
  // copy; the store must skip it and tombstone the surviving duplicate.
  EXPECT_TRUE(store.Remove(seg));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.CheckInvariants(), "");
  EXPECT_FALSE(store.OccupiedAt(2, 2));

  // Nothing left: a third removal is a clean miss, not a phantom success.
  EXPECT_FALSE(store.Remove(seg));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.CheckInvariants(), "");
}

TEST(IndexedSegmentStoreRemoval, SameKeySameStartDistinctDurations) {
  IndexedSegmentStore store;
  // Same line key and same t0, different finish — adjacent by_line
  // entries under the (key, segment) order.
  const geometry::Segment shorter({0, 0}, {2, 2});
  const geometry::Segment longer({0, 0}, {4, 4});

  store.Insert(shorter);
  store.Insert(longer);
  ASSERT_EQ(store.size(), 2u);

  // Tombstone the entry that sorts first, then remove its same-key
  // neighbour: the scan must match on the exact segment, not just the
  // (key, t0) prefix.
  EXPECT_TRUE(store.Remove(shorter));
  EXPECT_EQ(store.CheckInvariants(), "");
  EXPECT_TRUE(store.Remove(longer));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.CheckInvariants(), "");
  EXPECT_FALSE(store.Remove(shorter));
  EXPECT_FALSE(store.Remove(longer));
}

TEST(IndexedSegmentStoreRemoval, DuplicatesCollideUntilLastCopyRemoved) {
  IndexedSegmentStore store;
  const geometry::Segment seg({2, 3}, {6, 3});  // waiting segment
  const geometry::Segment probe({4, 3}, {5, 3});

  store.Insert(seg);
  store.Insert(seg);
  store.Insert(seg);
  EXPECT_NE(store.EarliestCollisionTime(probe), kInfiniteTime);

  EXPECT_TRUE(store.Remove(seg));
  EXPECT_TRUE(store.Remove(seg));
  // One copy still committed: the probe must still collide.
  EXPECT_NE(store.EarliestCollisionTime(probe), kInfiniteTime);
  EXPECT_EQ(store.CheckInvariants(), "");

  EXPECT_TRUE(store.Remove(seg));
  EXPECT_EQ(store.EarliestCollisionTime(probe), kInfiniteTime);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.CheckInvariants(), "");
}

TEST(IndexedSegmentStoreRemoval, PruneErasesFullyDeadLineBuckets) {
  IndexedSegmentStore store;
  // Two by_line buckets in the +1 slope class: line key 0 (two entries)
  // and line key 10 (one entry far enough out to survive the prune).
  const geometry::Segment early_a({0, 0}, {4, 4});
  const geometry::Segment early_b({6, 6}, {9, 9});
  const geometry::Segment late({20, 30}, {24, 34});
  store.Insert(early_a);
  store.Insert(early_b);
  store.Insert(late);
  ASSERT_EQ(store.stats().buckets_erased, 0);

  // Tombstoning every entry of the key-0 bucket does NOT erase the run:
  // below the compaction threshold it lingers (bucket scans and busy-run
  // extraction walk past it for nothing) until the next rebuild pass —
  // exactly the lifetime buckets_erased makes visible.
  EXPECT_TRUE(store.Remove(early_a));
  EXPECT_TRUE(store.Remove(early_b));
  EXPECT_EQ(store.stats().buckets_erased, 0);

  // The prune rebuild counts the fully-dead run as it drops it; the
  // surviving key-10 bucket is not counted.
  store.PruneBefore(10);
  EXPECT_EQ(store.stats().buckets_erased, 1);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.CheckInvariants(), "");
}

}  // namespace
}  // namespace carp::srp
