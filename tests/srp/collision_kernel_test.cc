// The survivor-scan kernels (DESIGN.md §2g) must be interchangeable: the
// batched and AVX2 lane kernels return bit-identical masks, the stores
// answer identically under every kernel (including across tombstones and
// partial padded tails), and runtime dispatch (CPUID, CARP_FORCE_KERNEL,
// SrpPlannerOptions::kernel) lands on the kernel it promises.
#include "srp/collision_kernel.h"

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/kernel_dispatch.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "srp/segment_index.h"
#include "srp/segment_store.h"
#include "srp/srp_planner.h"

namespace carp::srp {
namespace {

namespace is = internal_store;
using core::CollisionKernel;

constexpr std::size_t kSlots = is::kKernelBlockSlots;
constexpr std::int32_t kI32Max = std::numeric_limits<std::int32_t>::max();
constexpr std::int32_t kI32Min = std::numeric_limits<std::int32_t>::min();
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();

/// One hand-built 64-slot SoA block in the exact layout the kernels
/// consume: 64-byte-aligned columns, every slot explicitly set. Slots
/// default to the stores' never-match sentinel shape so a test only has to
/// place the slots it cares about.
struct TestBlock {
  alignas(64) std::int32_t t0[kSlots];
  alignas(64) std::int32_t p0[kSlots];
  alignas(64) std::int32_t t1[kSlots];
  alignas(64) std::int32_t p1[kSlots];
  alignas(64) std::int64_t key[kSlots];
  alignas(64) std::uint8_t dead[kSlots];

  TestBlock() {
    for (std::size_t i = 0; i < kSlots; ++i) {
      t0[i] = kI32Max;
      p0[i] = kI32Max;
      t1[i] = kI32Min;
      p1[i] = kI32Max;
      key[i] = kI64Max;
      dead[i] = 0;
    }
  }

  void Set(std::size_t i, std::int32_t a_t0, std::int32_t a_p0,
           std::int32_t a_t1, std::int32_t a_p1, bool is_dead = false) {
    t0[i] = a_t0;
    p0[i] = a_p0;
    t1[i] = a_t1;
    p1[i] = a_p1;
    dead[i] = is_dead ? 1 : 0;
  }

  void SetLine(std::size_t i, std::int64_t a_key, std::int32_t a_t0,
               std::int32_t a_t1, bool is_dead = false) {
    key[i] = a_key;
    t0[i] = a_t0;
    t1[i] = a_t1;
    dead[i] = is_dead ? 1 : 0;
  }
};

/// Slot-by-slot re-statement of the documented survivor semantics,
/// independent of the mask-parallel implementations it checks.
is::SurvivorMasks ReferenceSurvivors(const TestBlock& b,
                                     const is::SegmentProbe& probe) {
  is::SurvivorMasks m;
  for (std::size_t i = 0; i < kSlots; ++i) {
    if (b.dead[i] != 0) continue;
    if (b.t0[i] > probe.ct1 || b.t1[i] < probe.ct0) continue;
    m.time |= std::uint64_t{1} << i;
    const std::int32_t pmin = std::min(b.p0[i], b.p1[i]);
    const std::int32_t pmax = std::max(b.p0[i], b.p1[i]);
    if (pmax < probe.min_pos || pmin > probe.max_pos) continue;
    const int s = (b.p1[i] > b.p0[i]) - (b.p1[i] < b.p0[i]);
    const std::int64_t key = std::int64_t{b.p0[i]} -
                             std::int64_t{s} * std::int64_t{b.t0[i]};
    if (key < probe.klo[s + 1] || key > probe.khi[s + 1]) continue;
    m.survivors |= std::uint64_t{1} << i;
  }
  return m;
}

class KernelMaskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A mix the prefilters have to disagree about: all three slopes, dead
    // slots, boundary-touching spans, and untouched sentinel tails.
    block_.Set(0, 0, 5, 10, 15);                  // slope +1
    block_.Set(1, 2, 20, 9, 13);                  // slope -1
    block_.Set(2, 4, 7, 12, 7);                   // wait (slope 0)
    block_.Set(3, 0, 5, 10, 15, /*is_dead=*/true);  // dead twin of slot 0
    block_.Set(17, 100, 3, 130, 33);              // far future
    block_.Set(31, 6, 0, 6, 0);                   // zero-duration point
    block_.Set(32, 0, 40, 40, 0);                 // long diagonal down
    block_.Set(63, 10, 10, 10, 10);               // last real slot
    for (std::size_t i = 0; i < kSlots; ++i) {
      block_.SetLine(i, kI64Max, block_.t0[i], block_.t1[i],
                     block_.dead[i] != 0);
    }
    block_.SetLine(5, 42, 1, 9);
    block_.SetLine(6, 42, 4, 6, /*is_dead=*/true);
    block_.SetLine(7, 42, 12, 20);
    block_.SetLine(8, 77, 0, 100);
  }

  TestBlock block_;
};

TEST_F(KernelMaskTest, SurvivorMasksMatchReferenceAndEachOther) {
  const std::int64_t klo[3] = {-50, -50, -50};
  const std::int64_t khi[3] = {50, 50, 50};
  for (const auto& window : std::vector<std::pair<int, int>>{
           {0, 12}, {5, 6}, {11, 200}, {0, 0}, {39, 41}}) {
    is::SegmentProbe probe;
    ASSERT_TRUE(is::BuildSegmentProbe(window.first, 0, window.second, 20,
                                      klo, khi, &probe));
    const is::SurvivorMasks want = ReferenceSurvivors(block_, probe);
    const is::SurvivorMasks batched = is::SegmentSurvivorsBatched(
        block_.t0, block_.p0, block_.t1, block_.p1, block_.dead, probe);
    EXPECT_EQ(batched.time, want.time) << "window " << window.first;
    EXPECT_EQ(batched.survivors, want.survivors) << "window " << window.first;
    // Survivors pass strictly more prefilters than the time set.
    EXPECT_EQ(batched.survivors & ~batched.time, 0u);
    if (core::CpuSupportsAvx2()) {
      const is::SurvivorMasks avx2 = is::SegmentSurvivorsAvx2(
          block_.t0, block_.p0, block_.t1, block_.p1, block_.dead, probe);
      EXPECT_EQ(avx2.time, batched.time) << "window " << window.first;
      EXPECT_EQ(avx2.survivors, batched.survivors)
          << "window " << window.first;
    }
  }
}

TEST_F(KernelMaskTest, OccupancyMasksAgree) {
  for (std::int32_t t = 0; t <= 14; ++t) {
    for (std::int32_t pos : {0, 5, 7, 10, 15, 20}) {
      const is::OccupancyMasks batched = is::SegmentOccupancyBatched(
          block_.t0, block_.p0, block_.t1, block_.p1, block_.dead, t, pos);
      EXPECT_EQ(batched.hits & ~batched.covering, 0u);
      if (!core::CpuSupportsAvx2()) continue;
      const is::OccupancyMasks avx2 = is::SegmentOccupancyAvx2(
          block_.t0, block_.p0, block_.t1, block_.p1, block_.dead, t, pos);
      EXPECT_EQ(avx2.covering, batched.covering) << "t=" << t << " p=" << pos;
      EXPECT_EQ(avx2.hits, batched.hits) << "t=" << t << " p=" << pos;
    }
  }
}

TEST_F(KernelMaskTest, LineMasksAgree) {
  for (const std::int64_t probe_key : {std::int64_t{42}, std::int64_t{77},
                                       std::int64_t{1}, kI64Max}) {
    const is::LineForwardMasks fb = is::LineForwardBatched(
        block_.key, block_.t0, block_.t1, block_.dead, probe_key, 5, 10);
    const is::LineCoverMasks cb = is::LineCoverBatched(
        block_.key, block_.t0, block_.t1, block_.dead, probe_key, 8, 2);
    // The key sentinel must read as a forward stop at the logical end.
    if (probe_key != kI64Max) {
      EXPECT_NE(fb.stops & (std::uint64_t{1} << 60), 0u);
    }
    if (!core::CpuSupportsAvx2()) continue;
    const is::LineForwardMasks fa = is::LineForwardAvx2(
        block_.key, block_.t0, block_.t1, block_.dead, probe_key, 5, 10);
    EXPECT_EQ(fa.hits, fb.hits) << "key " << probe_key;
    EXPECT_EQ(fa.stops, fb.stops) << "key " << probe_key;
    const is::LineCoverMasks ca = is::LineCoverAvx2(
        block_.key, block_.t0, block_.t1, block_.dead, probe_key, 8, 2);
    EXPECT_EQ(ca.hits, cb.hits) << "key " << probe_key;
    EXPECT_EQ(ca.key_below, cb.key_below) << "key " << probe_key;
    EXPECT_EQ(ca.below_reach, cb.below_reach) << "key " << probe_key;
  }
}

// ---------------------------------------------------------------------------
// Store-level sweep: every population from empty through several blocks,
// with tombstones and partial padded tails, must answer identically under
// every kernel — and with identical examined counters (the lane paths are
// counter-exact by design, which is what makes the per-block gating safe).

struct SweepCase {
  bool indexed;
  CollisionKernel kernel;
};

std::string SweepName(const ::testing::TestParamInfo<SweepCase>& info) {
  return std::string(info.param.indexed ? "indexed" : "naive") + "_" +
         core::ToString(info.param.kernel);
}

geometry::Segment RandomStripSegment(Rng& rng) {
  const std::int64_t strip_length = 48;
  const std::int64_t dur = rng.UniformInt(0, 24);
  const std::int64_t t0 = rng.UniformInt(0, 256);
  const std::int64_t slope = rng.UniformInt(-1, 1);
  std::int64_t p0 = 0;
  if (slope > 0) {
    p0 = rng.UniformInt(0, strip_length - dur);
  } else if (slope < 0) {
    p0 = rng.UniformInt(dur, strip_length);
  } else {
    p0 = rng.UniformInt(0, strip_length);
  }
  return geometry::Segment({t0, p0}, {t0 + dur, p0 + slope * dur});
}

std::unique_ptr<SegmentStore> MakeSweepStore(const SweepCase& c) {
  if (c.indexed) {
    return std::make_unique<IndexedSegmentStore>(/*summary_pruning=*/true,
                                                 c.kernel);
  }
  return std::make_unique<NaiveSegmentStore>(/*summary_pruning=*/true,
                                             c.kernel);
}

class KernelSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(KernelSweepTest, PopulationsAnswerLikeFlatOracle) {
  const SweepCase c = GetParam();
  // Every population 0..64 walks the first block through all partial-tail
  // shapes; the sparser larger sizes cover engaged lanes over multi-block
  // stores whose last block is partial or exactly full.
  std::vector<std::size_t> populations;
  for (std::size_t n = 0; n <= 64; ++n) populations.push_back(n);
  for (std::size_t n : {65u, 77u, 96u, 127u, 128u, 129u, 160u}) {
    populations.push_back(n);
  }
  for (const std::size_t n : populations) {
    Rng rng(1000 + n);
    auto store = MakeSweepStore(c);
    // The flat scalar scan with summaries off is the bit-exact oracle.
    NaiveSegmentStore oracle(/*summary_pruning=*/false,
                             CollisionKernel::kScalar);
    std::vector<geometry::Segment> committed;
    for (std::size_t i = 0; i < n; ++i) {
      const geometry::Segment seg = RandomStripSegment(rng);
      store->Insert(seg);
      oracle.Insert(seg);
      committed.push_back(seg);
    }
    // Riddle the population with tombstones (every 3rd committed segment)
    // so live runs are broken up inside blocks.
    for (std::size_t i = 0; i < committed.size(); i += 3) {
      ASSERT_TRUE(store->Remove(committed[i]));
      ASSERT_TRUE(oracle.Remove(committed[i]));
    }
    for (int q = 0; q < 48; ++q) {
      const geometry::Segment probe = RandomStripSegment(rng);
      EXPECT_EQ(store->EarliestCollisionTime(probe),
                oracle.EarliestCollisionTime(probe))
          << "n=" << n << " probe " << q;
      const std::int64_t pos = rng.UniformInt(0, 48);
      const TimeStep t = rng.UniformInt(0, 280);
      EXPECT_EQ(store->OccupiedAt(pos, t), oracle.OccupiedAt(pos, t))
          << "n=" << n << " probe " << q;
    }
  }
}

TEST_P(KernelSweepTest, ExaminedCountersMatchScalarKernel) {
  const SweepCase c = GetParam();
  for (const std::size_t n : {48u, 64u, 100u, 160u}) {
    Rng rng(7000 + n);
    auto store = MakeSweepStore(c);
    auto scalar = MakeSweepStore({c.indexed, CollisionKernel::kScalar});
    std::vector<geometry::Segment> committed;
    for (std::size_t i = 0; i < n; ++i) {
      const geometry::Segment seg = RandomStripSegment(rng);
      store->Insert(seg);
      scalar->Insert(seg);
      committed.push_back(seg);
    }
    for (std::size_t i = 0; i < committed.size(); i += 4) {
      ASSERT_TRUE(store->Remove(committed[i]));
      ASSERT_TRUE(scalar->Remove(committed[i]));
    }
    store->ResetStats();
    scalar->ResetStats();
    for (int q = 0; q < 64; ++q) {
      const geometry::Segment probe = RandomStripSegment(rng);
      EXPECT_EQ(store->EarliestCollisionTime(probe),
                scalar->EarliestCollisionTime(probe));
      const std::int64_t pos = rng.UniformInt(0, 48);
      const TimeStep t = rng.UniformInt(0, 280);
      EXPECT_EQ(store->OccupiedAt(pos, t), scalar->OccupiedAt(pos, t));
    }
    const SegmentStoreStats got = store->stats();
    const SegmentStoreStats want = scalar->stats();
    EXPECT_EQ(got.candidates_examined, want.candidates_examined) << "n=" << n;
    EXPECT_EQ(got.blocks_scanned, want.blocks_scanned) << "n=" << n;
    EXPECT_EQ(got.blocks_skipped, want.blocks_skipped) << "n=" << n;
    EXPECT_EQ(got.candidates_pruned_by_summary,
              want.candidates_pruned_by_summary)
        << "n=" << n;
    // Lane counters are lane-only diagnostics: zero for the scalar kernel,
    // and survivors never exceed the lanes that produced them.
    EXPECT_EQ(want.lanes_processed, 0);
    EXPECT_LE(got.lanes_survived, got.lanes_processed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelSweepTest,
    ::testing::Values(SweepCase{false, CollisionKernel::kScalar},
                      SweepCase{false, CollisionKernel::kBatched},
                      SweepCase{false, CollisionKernel::kAvx2},
                      SweepCase{true, CollisionKernel::kScalar},
                      SweepCase{true, CollisionKernel::kBatched},
                      SweepCase{true, CollisionKernel::kAvx2}),
    SweepName);

// ---------------------------------------------------------------------------
// Dispatch: construction-time resolution honours CPUID, the environment
// override, and the planner option, and the resolved choice is visible in
// the stats labels end-to-end.

class KernelDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override { unsetenv("CARP_FORCE_KERNEL"); }
  void TearDown() override { unsetenv("CARP_FORCE_KERNEL"); }
};

TEST_F(KernelDispatchTest, ResolveNeverReturnsAuto) {
  for (const CollisionKernel k :
       {CollisionKernel::kScalar, CollisionKernel::kBatched,
        CollisionKernel::kAvx2, CollisionKernel::kAuto}) {
    EXPECT_NE(core::ResolveCollisionKernel(k), CollisionKernel::kAuto);
  }
}

TEST_F(KernelDispatchTest, AutoFollowsCpuid) {
  const CollisionKernel resolved =
      core::ResolveCollisionKernel(CollisionKernel::kAuto);
  if (core::CpuSupportsAvx2()) {
    EXPECT_EQ(resolved, CollisionKernel::kAvx2);
  } else {
    EXPECT_EQ(resolved, CollisionKernel::kScalar);
  }
  NaiveSegmentStore store;  // default kAuto
  EXPECT_EQ(store.kernel(), resolved);
  IndexedSegmentStore indexed;
  EXPECT_EQ(indexed.kernel(), resolved);
}

TEST_F(KernelDispatchTest, ExplicitAvx2DegradesWithoutCpuSupport) {
  const CollisionKernel resolved =
      core::ResolveCollisionKernel(CollisionKernel::kAvx2);
  EXPECT_EQ(resolved, core::CpuSupportsAvx2() ? CollisionKernel::kAvx2
                                              : CollisionKernel::kScalar);
}

TEST_F(KernelDispatchTest, ForceKernelOverridesRequestAtConstruction) {
  setenv("CARP_FORCE_KERNEL", "batched", 1);
  NaiveSegmentStore store(/*summary_pruning=*/true, CollisionKernel::kScalar);
  EXPECT_EQ(store.kernel(), CollisionKernel::kBatched);
  IndexedSegmentStore indexed(/*summary_pruning=*/true,
                              CollisionKernel::kAvx2);
  EXPECT_EQ(indexed.kernel(), CollisionKernel::kBatched);
  // An invalid spelling is ignored, not fatal.
  setenv("CARP_FORCE_KERNEL", "simd512", 1);
  NaiveSegmentStore fallback(/*summary_pruning=*/true,
                             CollisionKernel::kScalar);
  EXPECT_EQ(fallback.kernel(), CollisionKernel::kScalar);
}

TEST_F(KernelDispatchTest, PlannerOptionReachesStoresAndStats) {
  const layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  SrpPlannerOptions options;
  options.kernel = CollisionKernel::kBatched;
  SrpPlanner planner(warehouse.matrix, options);
  auto route = planner.PlanRoute(0, GridCoord{0, 0}, GridCoord{0, 20});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(planner.stats().collision_kernel, CollisionKernel::kBatched);
}

}  // namespace
}  // namespace carp::srp
