// PackedCollisionTime (the store-internal integer fast path) must agree
// with geometry::FindCollision (the checked Segment implementation of
// Def. 3) on *every* input — it sits in the innermost collision-judgement
// loop, so a single divergent rounding case silently corrupts planning.
// Exhaustive sweep over all slope pairs and small offsets: touching
// endpoints, half-integer swap crossings, and the negative two_tau
// rounding cases (opposite slopes meeting immediately at the overlap
// start) are all inside the enumerated range.
#include <gtest/gtest.h>

#include <vector>

#include "geometry/intersection.h"
#include "geometry/segment.h"
#include "srp/segment_store.h"

namespace carp::srp {
namespace {

using internal_store::PackedCollisionTime;
using internal_store::PackedSegment;

std::vector<geometry::Segment> EnumerateSmallSegments() {
  std::vector<geometry::Segment> all;
  for (std::int64_t t0 = 0; t0 <= 3; ++t0) {
    for (std::int64_t dur = 0; dur <= 3; ++dur) {
      for (std::int64_t slope = -1; slope <= 1; ++slope) {
        // Negative positions matter: they drive d_lo (and hence two_tau)
        // negative, the sign regime where truncating division must be
        // corrected to floor.
        for (std::int64_t p0 = -3; p0 <= 3; ++p0) {
          all.push_back(
              geometry::Segment({t0, p0}, {t0 + dur, p0 + slope * dur}));
        }
      }
    }
  }
  return all;
}

TEST(PackedCollisionEquivalence, ExhaustiveAgainstGeometry) {
  const std::vector<geometry::Segment> all = EnumerateSmallSegments();
  std::int64_t checked = 0;
  for (const geometry::Segment& stored : all) {
    const PackedSegment packed = PackedSegment::Pack(stored);
    for (const geometry::Segment& candidate : all) {
      const TimeStep expected = geometry::CollisionTime(stored, candidate);
      const TimeStep got = PackedCollisionTime(
          packed, candidate.start().t, candidate.start().pos,
          candidate.finish().t, candidate.finish().pos);
      ASSERT_EQ(got, expected)
          << "stored " << stored << " candidate " << candidate;
      ++checked;
    }
  }
  EXPECT_EQ(checked, static_cast<std::int64_t>(all.size() * all.size()));
}

// The pairs the comment above promises are actually inside the sweep —
// pin a representative of each tricky family explicitly so a future range
// tweak cannot quietly drop them.
TEST(PackedCollisionEquivalence, TrickyFamiliesPinned) {
  // Touching endpoints: candidate starts where the stored segment ends.
  const geometry::Segment a({0, 0}, {2, 2});
  const geometry::Segment touch({2, 2}, {3, 3});
  EXPECT_EQ(PackedCollisionTime(PackedSegment::Pack(a), 2, 2, 3, 3),
            geometry::CollisionTime(a, touch));

  // Half-integer swap crossing: opposite slopes passing through each
  // other between integer timesteps (the Fig. 1b conflict).
  const geometry::Segment up({0, 0}, {3, 3});
  const geometry::Segment down({0, 1}, {3, -2});
  const TimeStep swap_expected = geometry::CollisionTime(up, down);
  EXPECT_EQ(PackedCollisionTime(PackedSegment::Pack(up), 0, 1, 3, -2),
            swap_expected);
  EXPECT_NE(swap_expected, kInfiniteTime);

  // Negative two_tau: opposite slopes already past each other at the
  // overlap start — no collision, and the floor-corrected division must
  // not resurrect one.
  const geometry::Segment rising({0, 1}, {3, 4});
  const geometry::Segment falling({0, 0}, {3, -3});
  EXPECT_EQ(PackedCollisionTime(PackedSegment::Pack(rising), 0, 0, 3, -3),
            geometry::CollisionTime(rising, falling));
}

}  // namespace
}  // namespace carp::srp
