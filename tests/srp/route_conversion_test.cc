#include "srp/route_conversion.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/spatial_paths.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"

namespace carp::srp {
namespace {

using core::Route;
using core::WarehouseMatrix;

TEST(RouteConversionTest, SingleStripRouteRoundTrip) {
  WarehouseMatrix m(1, 10);  // one latitudinal strip
  StripGraph g(m);
  Route route(3, {{0, 2}, {0, 3}, {0, 4}, {0, 4}, {0, 5}});
  SrpPath path = PathFromRoute(g, route);
  ASSERT_EQ(path.legs.size(), 1u);
  // Segments: move (2->4), wait, move (4->5).
  EXPECT_EQ(path.legs[0].segments.size(), 3u);
  EXPECT_EQ(path.start_time(), 3);
  EXPECT_EQ(path.arrival_time(), 7);
  EXPECT_EQ(RouteFromPath(g, path), route);
}

TEST(RouteConversionTest, PointVisitBecomesPointSegment) {
  WarehouseMatrix m = WarehouseMatrix::FromAscii(
      "...\n"
      "#.#\n"
      "...\n");
  StripGraph g(m);
  // Route passes through the middle column strip for exactly one step.
  Route route(0, {{0, 1}, {1, 1}, {2, 1}});
  SrpPath path = PathFromRoute(g, route);
  // Rows 0 and 2 are latitudinal strips; (1,1) is a one-cell longitudinal
  // strip: three legs, middle is a point.
  ASSERT_EQ(path.legs.size(), 3u);
  EXPECT_TRUE(path.legs[1].segments[0].is_point());
  EXPECT_EQ(RouteFromPath(g, path), route);
}

TEST(RouteConversionTest, CrossingTimesAreConsecutive) {
  WarehouseMatrix m = WarehouseMatrix::FromAscii(
      "....\n"
      "#.#.\n"
      "#.#.\n"
      "....\n");
  StripGraph g(m);
  Route route(5, {{0, 0}, {0, 1}, {1, 1}, {2, 1}, {3, 1}, {3, 2}});
  SrpPath path = PathFromRoute(g, route);
  ASSERT_GE(path.legs.size(), 3u);
  for (std::size_t i = 0; i + 1 < path.legs.size(); ++i) {
    EXPECT_EQ(path.legs[i + 1].enter_time(),
              path.legs[i].leave_time() + 1);
  }
  EXPECT_EQ(RouteFromPath(g, path), route);
}

TEST(RouteConversionTest, RandomRoutesRoundTripOnTinyWarehouse) {
  layout::Warehouse w = layout::GenerateWarehouse(layout::PresetTiny());
  StripGraph g(w.matrix);
  core::SpatialPathFinder finder(w.matrix);
  Rng rng(4242);

  std::vector<GridCoord> aisles;
  for (std::int32_t i = 0; i < w.matrix.height(); ++i) {
    for (std::int32_t j = 0; j < w.matrix.width(); ++j) {
      if (w.matrix.IsTraversable({i, j})) aisles.push_back({i, j});
    }
  }

  for (int iter = 0; iter < 100; ++iter) {
    const GridCoord from =
        aisles[rng.UniformU32(static_cast<std::uint32_t>(aisles.size()))];
    const GridCoord to =
        aisles[rng.UniformU32(static_cast<std::uint32_t>(aisles.size()))];
    auto cells = finder.ShortestPath(from, to);
    ASSERT_TRUE(cells.has_value());
    // Sprinkle waits to exercise slope-0 segments.
    std::vector<GridCoord> with_waits;
    for (const GridCoord& c : *cells) {
      with_waits.push_back(c);
      if (rng.Bernoulli(0.2)) with_waits.push_back(c);
    }
    Route route(rng.UniformInt(0, 50), std::move(with_waits));
    SrpPath path = PathFromRoute(g, route);
    EXPECT_EQ(RouteFromPath(g, path), route);

    // Every leg's cells must lie in its claimed strip.
    for (const StripLeg& leg : path.legs) {
      const Strip& strip = g.strip(leg.strip);
      for (const auto& seg : leg.segments) {
        EXPECT_GE(seg.start().pos, 0);
        EXPECT_LT(seg.start().pos, strip.length());
        EXPECT_GE(seg.finish().pos, 0);
        EXPECT_LT(seg.finish().pos, strip.length());
      }
    }
  }
}

using RouteConversionDeathTest = ::testing::Test;

TEST(RouteConversionDeathTest, EmptyPathRejected) {
  WarehouseMatrix m(1, 4);
  StripGraph g(m);
  EXPECT_DEATH(RouteFromPath(g, SrpPath{}), "empty");
}

TEST(RouteConversionDeathTest, EmptyRouteRejected) {
  WarehouseMatrix m(1, 4);
  StripGraph g(m);
  EXPECT_DEATH(PathFromRoute(g, Route()), "empty");
}

TEST(RouteConversionDeathTest, DiscontinuousLegsRejected) {
  WarehouseMatrix m(1, 8);
  StripGraph g(m);
  SrpPath path;
  StripLeg leg;
  leg.strip = g.StripOf({0, 0});
  leg.segments = {geometry::Segment({0, 0}, {2, 2}),
                  geometry::Segment({5, 2}, {6, 3})};  // time gap
  path.legs.push_back(leg);
  EXPECT_DEATH(RouteFromPath(g, path), "discontinuous");
}

}  // namespace
}  // namespace carp::srp
