#include "srp/segment_store.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "srp/segment_index.h"

namespace carp::srp {
namespace {

using geometry::Segment;

enum class StoreKind { kNaive, kIndexed };

std::unique_ptr<SegmentStore> MakeStore(StoreKind kind) {
  if (kind == StoreKind::kNaive) {
    return std::make_unique<NaiveSegmentStore>();
  }
  return std::make_unique<IndexedSegmentStore>();
}

class SegmentStoreTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  std::unique_ptr<SegmentStore> store_ = MakeStore(GetParam());
};

TEST_P(SegmentStoreTest, EmptyStoreNeverCollides) {
  EXPECT_EQ(store_->EarliestCollisionTime(Segment({0, 0}, {10, 10})),
            kInfiniteTime);
  EXPECT_EQ(store_->size(), 0u);
}

TEST_P(SegmentStoreTest, DetectsCrossingCollision) {
  store_->Insert(Segment({0, 4}, {4, 0}));
  EXPECT_EQ(store_->EarliestCollisionTime(Segment({0, 0}, {4, 4})), 2);
}

TEST_P(SegmentStoreTest, ReturnsEarliestAmongMultiple) {
  store_->Insert(Segment({0, 8}, {8, 0}));   // crosses at t=4
  store_->Insert(Segment({0, 2}, {10, 2}));  // wait at pos 2: hit at t=2
  EXPECT_EQ(store_->EarliestCollisionTime(Segment({0, 0}, {8, 8})), 2);
}

TEST_P(SegmentStoreTest, InsertRemoveRoundTrip) {
  const Segment seg({3, 1}, {7, 5});
  store_->Insert(seg);
  EXPECT_EQ(store_->size(), 1u);
  EXPECT_NE(store_->EarliestCollisionTime(Segment({3, 5}, {7, 1})),
            kInfiniteTime);
  EXPECT_TRUE(store_->Remove(seg));
  EXPECT_EQ(store_->size(), 0u);
  EXPECT_EQ(store_->EarliestCollisionTime(Segment({3, 5}, {7, 1})),
            kInfiniteTime);
  EXPECT_FALSE(store_->Remove(seg));
}

TEST_P(SegmentStoreTest, DuplicateSegmentsSupported) {
  const Segment seg({0, 0}, {5, 5});
  store_->Insert(seg);
  store_->Insert(seg);
  EXPECT_EQ(store_->size(), 2u);
  EXPECT_TRUE(store_->Remove(seg));
  EXPECT_EQ(store_->size(), 1u);
  EXPECT_NE(store_->EarliestCollisionTime(Segment({0, 5}, {5, 0})),
            kInfiniteTime);
}

TEST_P(SegmentStoreTest, RemovalsTombstoneThenCompact) {
  // Lazy deletion: removals tombstone in place and the store folds the
  // live remainder down once the threshold trips, so the erase counter
  // keeps the full history while the tombstone backlog stays bounded.
  std::vector<Segment> segs;
  for (int i = 0; i < 200; ++i) {
    segs.push_back(Segment({i, 0}, {i + 4, 4}));
  }
  for (const Segment& seg : segs) store_->Insert(seg);
  for (int i = 0; i < 150; ++i) {
    EXPECT_TRUE(store_->Remove(segs[static_cast<std::size_t>(i)]));
  }
  EXPECT_EQ(store_->size(), 50u);
  const SegmentStoreStats stats = store_->stats();
  EXPECT_EQ(stats.erases, 150);
  EXPECT_GE(stats.compactions, 1);
  EXPECT_LT(stats.tombstones, stats.erases);
  // Removed reservations are really gone; survivors still collide.
  EXPECT_EQ(store_->EarliestCollisionTime(Segment({0, 4}, {4, 0})),
            kInfiniteTime);
  EXPECT_NE(store_->EarliestCollisionTime(Segment({199, 4}, {203, 0})),
            kInfiniteTime);
}

TEST_P(SegmentStoreTest, PruneBeforeDropsOnlyExpired) {
  store_->Insert(Segment({0, 0}, {5, 5}));    // expires at t=5
  store_->Insert(Segment({2, 7}, {8, 7}));    // expires at t=8
  store_->Insert(Segment({8, 0}, {12, 4}));   // straddles the horizon
  store_->Insert(Segment({20, 5}, {26, 5}));  // entirely in the future
  EXPECT_EQ(store_->PruneBefore(10), 2u);
  EXPECT_EQ(store_->size(), 2u);
  EXPECT_EQ(store_->stats().pruned, 2);
  // Expired reservations no longer collide; the straddler still does.
  EXPECT_EQ(store_->EarliestCollisionTime(Segment({0, 5}, {5, 0})),
            kInfiniteTime);
  EXPECT_NE(store_->EarliestCollisionTime(Segment({8, 4}, {12, 0})),
            kInfiniteTime);
  EXPECT_TRUE(store_->OccupiedAt(5, 26));
  // Releasing a route whose segments were already pruned is a no-op.
  EXPECT_FALSE(store_->Remove(Segment({0, 0}, {5, 5})));
  EXPECT_TRUE(store_->Remove(Segment({8, 0}, {12, 4})));
  EXPECT_EQ(store_->PruneBefore(100), 1u);
  EXPECT_EQ(store_->size(), 0u);
}

TEST_P(SegmentStoreTest, OccupiedAtPointProbe) {
  store_->Insert(Segment({2, 3}, {6, 7}));  // diagonal through (4,5)
  EXPECT_TRUE(store_->OccupiedAt(5, 4));
  EXPECT_FALSE(store_->OccupiedAt(5, 5));
  EXPECT_TRUE(store_->OccupiedAt(3, 2));  // start endpoint
  EXPECT_TRUE(store_->OccupiedAt(7, 6));  // finish endpoint
  EXPECT_FALSE(store_->OccupiedAt(8, 7));
}

TEST_P(SegmentStoreTest, RetainedBytesGrowWithSegments) {
  const std::size_t empty = store_->RetainedBytes();
  for (int i = 0; i < 50; ++i) {
    store_->Insert(Segment({i * 10, 0}, {i * 10 + 5, 5}));
  }
  EXPECT_GT(store_->RetainedBytes(), empty);
}

TEST_P(SegmentStoreTest, StatsCountQueries) {
  store_->Insert(Segment({0, 0}, {5, 5}));
  store_->ResetStats();
  store_->EarliestCollisionTime(Segment({0, 5}, {5, 0}));
  store_->EarliestCollisionTime(Segment({20, 0}, {25, 5}));
  EXPECT_EQ(store_->stats().queries, 2);
}

INSTANTIATE_TEST_SUITE_P(BothStores, SegmentStoreTest,
                         ::testing::Values(StoreKind::kNaive,
                                           StoreKind::kIndexed),
                         [](const auto& info) {
                           return info.param == StoreKind::kNaive
                                      ? "Naive"
                                      : "Indexed";
                         });

// ---------------------------------------------------------------------
// Equivalence property: on random segment populations, the slope-indexed
// store must report exactly the same earliest collision time as the naive
// store for every probe (Sec. V-D is an accelerator, not a relaxation).
// ---------------------------------------------------------------------

class StoreEquivalenceTest : public ::testing::TestWithParam<int> {};

Segment RandomSegment(Rng& rng) {
  const TimeStep t0 = rng.UniformInt(0, 40);
  const std::int64_t p0 = rng.UniformInt(0, 15);
  const TimeStep dur = rng.UniformInt(0, 12);
  const int slope = static_cast<int>(rng.UniformInt(-1, 1));
  std::int64_t p1 = p0 + slope * dur;
  if (p1 < 0 || p1 > 15) p1 = p0 - slope * dur;
  if (p1 < 0 || p1 > 15) p1 = p0;
  // |p1 - p0| is either dur or 0, so the duration is always `dur`.
  return Segment({t0, p0}, {t0 + dur, p1});
}

TEST_P(StoreEquivalenceTest, IndexedMatchesNaive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337 + 11);
  NaiveSegmentStore naive;
  IndexedSegmentStore indexed;
  for (int i = 0; i < 300; ++i) {
    const Segment seg = RandomSegment(rng);
    naive.Insert(seg);
    indexed.Insert(seg);
  }
  ASSERT_EQ(naive.size(), indexed.size());
  for (int probe = 0; probe < 500; ++probe) {
    const Segment candidate = RandomSegment(rng);
    EXPECT_EQ(naive.EarliestCollisionTime(candidate),
              indexed.EarliestCollisionTime(candidate))
        << "candidate=" << candidate;
  }
}

TEST_P(StoreEquivalenceTest, IndexedMatchesNaiveAfterRemovals) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  NaiveSegmentStore naive;
  IndexedSegmentStore indexed;
  std::vector<Segment> inserted;
  for (int i = 0; i < 200; ++i) {
    const Segment seg = RandomSegment(rng);
    naive.Insert(seg);
    indexed.Insert(seg);
    inserted.push_back(seg);
  }
  // Remove half.
  for (std::size_t i = 0; i < inserted.size(); i += 2) {
    EXPECT_TRUE(naive.Remove(inserted[i]));
    EXPECT_TRUE(indexed.Remove(inserted[i]));
  }
  ASSERT_EQ(naive.size(), indexed.size());
  for (int probe = 0; probe < 300; ++probe) {
    const Segment candidate = RandomSegment(rng);
    EXPECT_EQ(naive.EarliestCollisionTime(candidate),
              indexed.EarliestCollisionTime(candidate));
  }
}

TEST_P(StoreEquivalenceTest, IndexedMatchesNaiveAfterPrune) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  NaiveSegmentStore naive;
  IndexedSegmentStore indexed;
  std::vector<Segment> inserted;
  for (int i = 0; i < 250; ++i) {
    const Segment seg = RandomSegment(rng);
    naive.Insert(seg);
    indexed.Insert(seg);
    inserted.push_back(seg);
  }
  // A prune sweep, then a round of releases landing on both pruned and
  // surviving segments — the mix a retiring simulator actually produces.
  EXPECT_EQ(naive.PruneBefore(20), indexed.PruneBefore(20));
  for (std::size_t i = 0; i < inserted.size(); i += 3) {
    EXPECT_EQ(naive.Remove(inserted[i]), indexed.Remove(inserted[i]));
  }
  ASSERT_EQ(naive.size(), indexed.size());
  for (int probe = 0; probe < 300; ++probe) {
    const Segment candidate = RandomSegment(rng);
    EXPECT_EQ(naive.EarliestCollisionTime(candidate),
              indexed.EarliestCollisionTime(candidate))
        << "candidate=" << candidate;
    EXPECT_EQ(naive.OccupiedAt(candidate.start().pos, candidate.start().t),
              indexed.OccupiedAt(candidate.start().pos, candidate.start().t));
  }
}

TEST_P(StoreEquivalenceTest, IndexedExaminesFewerCandidates) {
  // The point of the index: fewer pairwise judgements per query on
  // populations dominated by parallel segments. Compared with summary
  // pruning off so the measurement isolates the slope index itself (the
  // block summaries cut both stores' scans — pinned separately below).
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 101);
  NaiveSegmentStore naive(/*summary_pruning=*/false);
  IndexedSegmentStore indexed(/*summary_pruning=*/false);
  // Mostly-parallel population: long waits at distinct positions.
  for (int i = 0; i < 200; ++i) {
    const std::int64_t pos = rng.UniformInt(0, 60);
    const TimeStep t0 = rng.UniformInt(0, 30);
    Segment seg({t0, pos}, {t0 + 10, pos});
    naive.Insert(seg);
    indexed.Insert(seg);
  }
  naive.ResetStats();
  indexed.ResetStats();
  for (int probe = 0; probe < 100; ++probe) {
    const std::int64_t pos = rng.UniformInt(0, 60);
    Segment candidate({15, pos}, {25, pos});
    naive.EarliestCollisionTime(candidate);
    indexed.EarliestCollisionTime(candidate);
  }
  EXPECT_LT(indexed.stats().candidates_examined,
            naive.stats().candidates_examined / 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreEquivalenceTest,
                         ::testing::Range(0, 8));

// The hand-rolled integer kernel used in the scan loops must agree with
// the reference geometry::FindCollision on every random pair.
class PackedKernelTest : public ::testing::TestWithParam<int> {};

TEST_P(PackedKernelTest, MatchesReferencePredicate) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 9);
  for (int iter = 0; iter < 3000; ++iter) {
    const Segment a = RandomSegment(rng);
    const Segment b = RandomSegment(rng);
    const auto packed = internal_store::PackedSegment::Pack(a);
    const TimeStep expected = geometry::CollisionTime(b, a);
    const TimeStep actual = internal_store::PackedCollisionTime(
        packed, b.start().t, b.start().pos, b.finish().t, b.finish().pos);
    EXPECT_EQ(expected, actual) << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackedKernelTest, ::testing::Range(0, 6));

// The indexed store's O(log n) OccupiedAt override must agree with the
// generic point-probe implementation.
TEST(IndexedSegmentStoreTest, OccupiedAtMatchesGenericProbe) {
  Rng rng(515);
  IndexedSegmentStore indexed;
  NaiveSegmentStore naive;
  for (int i = 0; i < 400; ++i) {
    const Segment seg = RandomSegment(rng);
    indexed.Insert(seg);
    naive.Insert(seg);
  }
  for (int probe = 0; probe < 3000; ++probe) {
    const std::int64_t pos = rng.UniformInt(0, 16);
    const TimeStep t = rng.UniformInt(0, 55);
    EXPECT_EQ(indexed.OccupiedAt(pos, t), naive.OccupiedAt(pos, t))
        << "pos=" << pos << " t=" << t;
  }
}

TEST(IndexedSegmentStoreTest, OccupiedAtAfterRemovals) {
  Rng rng(616);
  IndexedSegmentStore indexed;
  NaiveSegmentStore naive;
  std::vector<Segment> segs;
  for (int i = 0; i < 200; ++i) {
    const Segment seg = RandomSegment(rng);
    indexed.Insert(seg);
    naive.Insert(seg);
    segs.push_back(seg);
  }
  for (std::size_t i = 0; i < segs.size(); i += 3) {
    indexed.Remove(segs[i]);
    naive.Remove(segs[i]);
  }
  for (int probe = 0; probe < 1500; ++probe) {
    const std::int64_t pos = rng.UniformInt(0, 16);
    const TimeStep t = rng.UniformInt(0, 55);
    EXPECT_EQ(indexed.OccupiedAt(pos, t), naive.OccupiedAt(pos, t));
  }
}

TEST(IndexedSegmentStoreTest, MaxBucketSizeSmallForDiagonalTraffic) {
  // The paper's remark: rotation makes the same-key mapping almost
  // one-to-one for moving segments.
  IndexedSegmentStore store;
  for (int i = 0; i < 100; ++i) {
    store.Insert(Segment({i * 3, 0}, {i * 3 + 8, 8}));
  }
  // All on distinct lines (distinct keys) -> buckets of size... every
  // segment here has key -t0, all distinct.
  EXPECT_EQ(store.MaxBucketSize(), 1u);
}

TEST_P(SegmentStoreTest, PruneCompactsWithoutShrinkingCapacity) {
  // An epoch prune sweep compacts eagerly but keeps capacity: the store
  // refills to a similar working set before the next sweep, so a shrink
  // there would only force a realloc cycle (counter-verified).
  for (int i = 0; i < 4096; ++i) {
    store_->Insert(Segment({4 * i, 0}, {4 * i + 4, 4}));
  }
  const std::size_t peak_bytes = store_->RetainedBytes();
  EXPECT_EQ(store_->PruneBefore(kInfiniteTime), 4096u);
  const auto s = store_->stats();
  EXPECT_EQ(s.pruned, 4096);
  EXPECT_GT(s.compactions, 0);
  EXPECT_EQ(s.shrinks, 0);
  EXPECT_EQ(store_->size(), 0u);
  // Capacity survives for the refill (tombstone flag bytes may be freed by
  // a vector implementation's resize, so compare against the items' share).
  EXPECT_GE(store_->RetainedBytes(), peak_bytes / 2);
}

TEST_P(SegmentStoreTest, ThresholdCompactionShrinksAndCountsIt) {
  // Removal-driven (threshold) compactions DO return capacity once the
  // live set falls well under it.
  std::vector<Segment> segs;
  for (int i = 0; i < 4096; ++i) {
    segs.push_back(Segment({4 * i, 0}, {4 * i + 4, 4}));
    store_->Insert(segs.back());
  }
  const std::size_t peak_bytes = store_->RetainedBytes();
  for (const Segment& seg : segs) EXPECT_TRUE(store_->Remove(seg));
  const auto s = store_->stats();
  EXPECT_EQ(s.erases, 4096);
  EXPECT_GT(s.compactions, 0);
  EXPECT_GT(s.shrinks, 0);
  EXPECT_LT(store_->RetainedBytes(), peak_bytes / 2);
}

// ---------------------------------------------------------------------
// Block summaries (DESIGN.md §2f): the per-block aggregates must stay
// exact under every structural edit, and the two-level kernel they feed
// must be an accelerator, not a relaxation.
// ---------------------------------------------------------------------

TEST_P(SegmentStoreTest, SummariesStayExactUnderInterleavedOps) {
  // Interleaved insert / remove / prune across several compaction cycles;
  // CheckInvariants() recomputes every block summary from the slots and
  // compares field-by-field, so any stale aggregate fails here.
  Rng rng(4242);
  std::vector<Segment> live;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 37; ++i) {
      const Segment seg = RandomSegment(rng);
      store_->Insert(seg);
      live.push_back(seg);
    }
    for (int i = 0; i < 11 && !live.empty(); ++i) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      EXPECT_TRUE(store_->Remove(live[pick]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (round % 7 == 6) {
      const TimeStep cut = rng.UniformInt(0, 30);
      store_->PruneBefore(cut);
      std::erase_if(live, [cut](const Segment& s) {
        return s.finish().t < cut;
      });
    }
    ASSERT_EQ(store_->CheckInvariants(), "") << "round " << round;
  }
  EXPECT_EQ(store_->size(), live.size());
}

TEST_P(SegmentStoreTest, SummaryPruningPreservesAnswersAndCutsWork) {
  // The same population behind a pruning store and a flat-scan store must
  // give bit-identical answers on every probe, with the pruning store
  // evaluating strictly fewer pairwise predicates.
  auto flat = GetParam() == StoreKind::kNaive
                  ? std::unique_ptr<SegmentStore>(
                        std::make_unique<NaiveSegmentStore>(
                            /*summary_pruning=*/false))
                  : std::unique_ptr<SegmentStore>(
                        std::make_unique<IndexedSegmentStore>(
                            /*summary_pruning=*/false));
  Rng rng(987);
  for (int i = 0; i < 600; ++i) {
    const Segment seg = RandomSegment(rng);
    store_->Insert(seg);
    flat->Insert(seg);
  }
  store_->ResetStats();
  flat->ResetStats();
  for (int probe = 0; probe < 400; ++probe) {
    const Segment candidate = RandomSegment(rng);
    EXPECT_EQ(store_->EarliestCollisionTime(candidate),
              flat->EarliestCollisionTime(candidate))
        << "candidate=" << candidate;
  }
  const SegmentStoreStats pruned = store_->stats();
  const SegmentStoreStats exhaustive = flat->stats();
  EXPECT_LT(pruned.candidates_examined, exhaustive.candidates_examined);
  EXPECT_GT(pruned.blocks_skipped + pruned.candidates_pruned_by_summary, 0);
  EXPECT_EQ(exhaustive.blocks_skipped, 0);
  EXPECT_EQ(exhaustive.candidates_pruned_by_summary, 0);
}

TEST(NaiveSegmentStoreTest, CorruptedSummaryIsCaughtByInvariantAudit) {
  // Calibrates the kStaleSummary fault injection: one collapsed block
  // summary must trip CheckInvariants (the fuzzer audits it every op).
  NaiveSegmentStore store;
  for (int i = 0; i < 100; ++i) {
    store.Insert(Segment({i, 0}, {i + 4, 4}));
  }
  ASSERT_EQ(store.CheckInvariants(), "");
  ASSERT_TRUE(store.CorruptSummaryForTest());
  EXPECT_NE(store.CheckInvariants(), "");
}

TEST(NaiveSegmentStoreTest, OccupiedAtBinarySearchesProbeWindow) {
  // The generic point probe no longer walks the whole sequence: it binary
  // searches the reach-bounded window [t - max_duration, t], so a probe
  // against a time-spread population touches a handful of slots. Measured
  // on the flat store so the bound pins the window, not summary skips.
  NaiveSegmentStore store(/*summary_pruning=*/false);
  for (int i = 0; i < 1024; ++i) {
    store.Insert(Segment({4 * i, i % 16}, {4 * i + 4, i % 16}));
  }
  store.ResetStats();
  for (int probe = 0; probe < 100; ++probe) {
    store.OccupiedAt(probe % 16, 4 * (probe * 9 % 1024) + 2);
  }
  const SegmentStoreStats s = store.stats();
  // 100 probes over 1024 stored segments: the window holds ~2 segments
  // (duration 4, start spacing 4), far below one slot per stored segment.
  EXPECT_LE(s.candidates_examined, 100 * 4);
  EXPECT_GT(s.candidates_examined, 0);
}

TEST(IndexedSegmentStoreTest, ByLineChurnCountersPinned) {
  // Satellite check: the by-line sequence's tombstone / compaction /
  // shrink churn is reported separately AND folded into the aggregates.
  // 200 slope-0 segments removed in order trip the threshold (>=64
  // tombstones covering half the slots) at removals #100 and #164,
  // leaving 36 tombstones — in both sequences, which see identical edits.
  IndexedSegmentStore store;
  std::vector<Segment> segs;
  for (int i = 0; i < 200; ++i) {
    segs.push_back(Segment({4 * i, i % 8}, {4 * i + 4, i % 8}));
    store.Insert(segs.back());
  }
  for (const Segment& seg : segs) ASSERT_TRUE(store.Remove(seg));
  const SegmentStoreStats s = store.stats();
  EXPECT_EQ(s.by_line_tombstones, 36);
  EXPECT_EQ(s.by_line_compactions, 2);
  EXPECT_GE(s.by_line_shrinks, 1);
  // Aggregates include both the main and the by-line sequences.
  EXPECT_EQ(s.tombstones, 2 * s.by_line_tombstones);
  EXPECT_EQ(s.compactions, 2 * s.by_line_compactions);
  EXPECT_GE(s.shrinks, s.by_line_shrinks);
}

}  // namespace
}  // namespace carp::srp
