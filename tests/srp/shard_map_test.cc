// ShardMap ownership partition + accounting audit, and the
// shard-partitioned boundary-crossing registry (DESIGN.md §2h).
#include "srp/shard_map.h"

#include <gtest/gtest.h>

#include "srp/strip_graph.h"

namespace carp::srp {
namespace {

using core::WarehouseMatrix;

TEST(ShardMapTest, ShardOfIsRoundRobin) {
  ShardMap map(10, 4);
  EXPECT_EQ(map.shard_count(), 4u);
  EXPECT_EQ(map.strip_count(), 10u);
  for (StripId s = 0; s < 10; ++s) {
    EXPECT_EQ(map.ShardOf(s), static_cast<std::uint32_t>(s % 4));
  }
}

TEST(ShardMapTest, ZeroShardsClampsToOne) {
  ShardMap map(5, 0);
  EXPECT_EQ(map.shard_count(), 1u);
  for (StripId s = 0; s < 5; ++s) EXPECT_EQ(map.ShardOf(s), 0u);
}

TEST(ShardMapTest, AddSegmentsTracksPerShardAndTotal) {
  ShardMap map(8, 2);
  map.AddSegments(0, 3);
  map.AddSegments(1, 5);
  map.AddSegments(0, -1);
  EXPECT_EQ(map.ShardSegments(0), 2);
  EXPECT_EQ(map.ShardSegments(1), 5);
  EXPECT_EQ(map.TotalSegments(), 7);
  map.ResetCounts();
  EXPECT_EQ(map.TotalSegments(), 0);
}

TEST(ShardMapTest, CheckInvariantsPassesWhenLedgerMatchesStores) {
  ShardMap map(6, 3);
  // Strips 0..5 hold 1,2,0,4,0,3 segments; shard k owns strips {k, k+3}.
  const std::vector<std::size_t> live = {1, 2, 0, 4, 0, 3};
  map.AddSegments(0, 1 + 4);  // strips 0, 3
  map.AddSegments(1, 2 + 0);  // strips 1, 4
  map.AddSegments(2, 0 + 3);  // strips 2, 5
  EXPECT_EQ(map.CheckInvariants(live), "");
}

TEST(ShardMapTest, CheckInvariantsFlagsAuditLengthMismatch) {
  ShardMap map(6, 3);
  const std::vector<std::size_t> too_short = {1, 2, 3};
  const std::string err = map.CheckInvariants(too_short);
  EXPECT_NE(err.find("partitions"), std::string::npos) << err;
}

TEST(ShardMapTest, CheckInvariantsFlagsWrongShardEvenWhenTotalsBalance) {
  ShardMap map(4, 2);
  const std::vector<std::size_t> live = {2, 1, 0, 0};
  // The kCrossShardLeak shape: one of strip 0's segments accounted to
  // shard 1. Totals still agree (3 == 3); the per-shard audit must not.
  map.AddSegments(0, 1);
  map.AddSegments(1, 2);
  EXPECT_EQ(map.TotalSegments(), 3);
  const std::string err = map.CheckInvariants(live);
  EXPECT_NE(err.find("shard"), std::string::npos) << err;
  EXPECT_NE(err.find("accounts"), std::string::npos) << err;
}

TEST(ShardMapTest, CheckInvariantsFlagsTotalMismatch) {
  ShardMap map(4, 2);
  const std::vector<std::size_t> live = {1, 0, 0, 0};
  // Nothing ever accounted: shard 0 disagrees with its strips.
  const std::string err = map.CheckInvariants(live);
  EXPECT_FALSE(err.empty());
}

// ---- ShardedCrossings --------------------------------------------------

// Three stacked full-width aisle rows: three latitudinal strips, ids 0..2.
WarehouseMatrix ThreeRowMatrix() {
  return WarehouseMatrix::FromAscii(
      "...\n"
      "...\n"
      "...\n");
}

TEST(ShardedCrossingsTest, CrossingOwnedByDepartureStripShard) {
  const WarehouseMatrix m = ThreeRowMatrix();
  const StripGraph g(m);
  ASSERT_EQ(g.vertex_count(), 3);
  const ShardMap map(static_cast<std::size_t>(g.vertex_count()), 2);
  ShardedCrossings xs(g, map);

  // Departure {0,1} lives in strip 0 (shard 0); arrival {1,1} in strip 1.
  xs.Insert({0, 1}, {1, 1}, 9);
  EXPECT_EQ(xs.size(), 1u);
  EXPECT_EQ(xs.CountOf({0, 1}, {1, 1}, 9), 1);

  // The opposite crossing probe consults the arrival's shard.
  EXPECT_TRUE(xs.WouldSwap({1, 1}, {0, 1}, 9));
  EXPECT_FALSE(xs.WouldSwap({0, 1}, {1, 1}, 9));
  EXPECT_FALSE(xs.WouldSwap({1, 1}, {0, 1}, 8));

  xs.Remove({0, 1}, {1, 1}, 9);
  EXPECT_EQ(xs.size(), 0u);
  EXPECT_FALSE(xs.WouldSwap({1, 1}, {0, 1}, 9));
}

TEST(ShardedCrossingsTest, AggregatesAcrossShards) {
  const WarehouseMatrix m = ThreeRowMatrix();
  const StripGraph g(m);
  const ShardMap map(static_cast<std::size_t>(g.vertex_count()), 2);
  ShardedCrossings xs(g, map);

  xs.Insert({0, 0}, {1, 0}, 3);  // departs strip 0 -> shard 0
  xs.Insert({1, 2}, {2, 2}, 4);  // departs strip 1 -> shard 1
  xs.Insert({2, 1}, {1, 1}, 5);  // departs strip 2 -> shard 0
  EXPECT_EQ(xs.size(), 3u);
  EXPECT_EQ(xs.TotalCount(), 3);
  EXPECT_EQ(xs.CheckInvariants(), "");
  EXPECT_GT(xs.RetainedBytes(), 0u);

  EXPECT_EQ(xs.PruneBefore(5), 2u);
  EXPECT_EQ(xs.size(), 1u);
  EXPECT_TRUE(xs.WouldSwap({1, 1}, {2, 1}, 5));

  xs.Clear();
  EXPECT_EQ(xs.size(), 0u);
  EXPECT_EQ(xs.TotalCount(), 0);
}

}  // namespace
}  // namespace carp::srp
