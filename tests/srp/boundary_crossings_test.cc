#include "srp/boundary_crossings.h"

#include <gtest/gtest.h>

namespace carp::srp {
namespace {

TEST(BoundaryCrossingsTest, DetectsOppositeCrossing) {
  BoundaryCrossings bc;
  bc.Insert({3, 4}, {3, 5}, 10);
  EXPECT_TRUE(bc.WouldSwap({3, 5}, {3, 4}, 10));
  EXPECT_FALSE(bc.WouldSwap({3, 4}, {3, 5}, 10));  // same direction is fine
}

TEST(BoundaryCrossingsTest, TimeSpecific) {
  BoundaryCrossings bc;
  bc.Insert({0, 0}, {0, 1}, 7);
  EXPECT_TRUE(bc.WouldSwap({0, 1}, {0, 0}, 7));
  EXPECT_FALSE(bc.WouldSwap({0, 1}, {0, 0}, 6));
  EXPECT_FALSE(bc.WouldSwap({0, 1}, {0, 0}, 8));
}

TEST(BoundaryCrossingsTest, CellSpecific) {
  BoundaryCrossings bc;
  bc.Insert({2, 2}, {2, 3}, 5);
  EXPECT_FALSE(bc.WouldSwap({2, 4}, {2, 3}, 5));
  EXPECT_FALSE(bc.WouldSwap({3, 3}, {2, 3}, 5));
}

TEST(BoundaryCrossingsTest, RemoveUndoesInsert) {
  BoundaryCrossings bc;
  bc.Insert({1, 1}, {1, 2}, 3);
  EXPECT_EQ(bc.size(), 1u);
  bc.Remove({1, 1}, {1, 2}, 3);
  EXPECT_EQ(bc.size(), 0u);
  EXPECT_FALSE(bc.WouldSwap({1, 2}, {1, 1}, 3));
  bc.Remove({1, 1}, {1, 2}, 3);  // idempotent
}

TEST(BoundaryCrossingsTest, ClearAndBytes) {
  BoundaryCrossings bc;
  const std::size_t empty_bytes = bc.RetainedBytes();
  for (TimeStep t = 0; t < 100; ++t) {
    bc.Insert({0, 0}, {0, 1}, t);
  }
  EXPECT_EQ(bc.size(), 100u);
  EXPECT_GT(bc.RetainedBytes(), empty_bytes);
  bc.Clear();
  EXPECT_EQ(bc.size(), 0u);
}

TEST(BoundaryCrossingsTest, DistinctCellPairsDoNotAlias) {
  BoundaryCrossings bc;
  bc.Insert({10, 20}, {10, 21}, 100);
  bc.Insert({20, 10}, {21, 10}, 100);
  EXPECT_TRUE(bc.WouldSwap({10, 21}, {10, 20}, 100));
  EXPECT_TRUE(bc.WouldSwap({21, 10}, {20, 10}, 100));
  EXPECT_FALSE(bc.WouldSwap({10, 20}, {10, 21}, 100));
  EXPECT_EQ(bc.size(), 2u);
}

}  // namespace
}  // namespace carp::srp
