#include "srp/strip_graph.h"

#include <set>

#include <gtest/gtest.h>

#include "layout/layout_generator.h"
#include "layout/presets.h"

namespace carp::srp {
namespace {

using core::WarehouseMatrix;

// The toy layout of the paper's Fig. 3 flavour: two 2x2 rack clusters
// between full-width aisles.
WarehouseMatrix ToyMatrix() {
  return WarehouseMatrix::FromAscii(
      ".......\n"
      ".##.##.\n"
      ".##.##.\n"
      ".......\n");
}

TEST(StripGraphTest, FullAisleRowsBecomeLatitudinalStrips) {
  WarehouseMatrix m = ToyMatrix();
  StripGraph g(m);
  int latitudinal = 0;
  for (const Strip& s : g.strips()) {
    if (s.dir == Direction::kLatitudinal) {
      ++latitudinal;
      EXPECT_EQ(s.type, CellKind::kAisle);
      EXPECT_EQ(s.length(), m.width());
    }
  }
  EXPECT_EQ(latitudinal, 2);  // rows 0 and 3
}

TEST(StripGraphTest, RemainingCellsAggregateLongitudinally) {
  StripGraph g(ToyMatrix());
  // Rows 1-2: columns 0,3,6 are aisle strips of length 2; columns 1,2,4,5
  // are rack strips of length 2. Plus 2 latitudinal = 2 + 7 strips.
  EXPECT_EQ(g.vertex_count(), 9);
  int rack_strips = 0;
  for (const Strip& s : g.strips()) {
    if (s.type == CellKind::kRack) {
      ++rack_strips;
      EXPECT_EQ(s.dir, Direction::kLongitudinal);
      EXPECT_EQ(s.length(), 2);
    }
  }
  EXPECT_EQ(rack_strips, 4);
}

TEST(StripGraphTest, EveryCellBelongsToExactlyOneStrip) {
  WarehouseMatrix m = ToyMatrix();
  StripGraph g(m);
  std::vector<std::int64_t> counted(static_cast<std::size_t>(
      g.vertex_count()));
  for (std::int32_t i = 0; i < m.height(); ++i) {
    for (std::int32_t j = 0; j < m.width(); ++j) {
      const StripId sid = g.StripOf({i, j});
      ASSERT_GE(sid, 0);
      ASSERT_LT(sid, g.vertex_count());
      EXPECT_TRUE(g.strip(sid).Contains({i, j}));
      ++counted[static_cast<std::size_t>(sid)];
    }
  }
  std::int64_t total = 0;
  for (std::size_t s = 0; s < counted.size(); ++s) {
    EXPECT_EQ(counted[s], g.strip(static_cast<StripId>(s)).length());
    total += counted[s];
  }
  EXPECT_EQ(total, m.CellCount());
}

TEST(StripGraphTest, NoRackRackEdges) {
  StripGraph g(ToyMatrix());
  for (const Strip& s : g.strips()) {
    for (const StripEdge& e : g.EdgesOf(s.id)) {
      const bool both_rack = g.strip(e.from).type == CellKind::kRack &&
                             g.strip(e.to).type == CellKind::kRack;
      EXPECT_FALSE(both_rack)
          << "rack-rack edge " << e.from << "->" << e.to;
    }
  }
}

TEST(StripGraphTest, EdgesAreSymmetricWithMirroredContacts) {
  StripGraph g(ToyMatrix());
  for (const Strip& s : g.strips()) {
    for (const StripEdge& e : g.EdgesOf(s.id)) {
      bool found_reverse = false;
      for (const StripEdge& r : g.EdgesOf(e.to)) {
        if (r.to == e.from) {
          found_reverse = true;
          EXPECT_EQ(r.contacts.size(), e.contacts.size());
        }
      }
      EXPECT_TRUE(found_reverse);
    }
  }
}

TEST(StripGraphTest, ContactsAreAdjacentCells) {
  StripGraph g(ToyMatrix());
  for (const Strip& s : g.strips()) {
    for (const StripEdge& e : g.EdgesOf(s.id)) {
      for (const StripContact& c : e.contacts) {
        const GridCoord a = g.strip(e.from).CellAt(c.pos_u);
        const GridCoord b = g.strip(e.to).CellAt(c.pos_v);
        EXPECT_EQ(ManhattanDistance(a, b), 1);
      }
    }
  }
}

TEST(StripGraphTest, NearestContactPicksClosest) {
  StripEdge edge;
  edge.contacts = {{0, 5}, {4, 9}, {9, 14}};
  EXPECT_EQ(edge.NearestContact(0).pos_u, 0);
  EXPECT_EQ(edge.NearestContact(1).pos_u, 0);
  EXPECT_EQ(edge.NearestContact(3).pos_u, 4);
  EXPECT_EQ(edge.NearestContact(7).pos_u, 9);
  EXPECT_EQ(edge.NearestContact(100).pos_u, 9);
}

TEST(StripGraphTest, ContactNearestToTargetPicksByTargetSide) {
  StripEdge edge;
  edge.contacts = {{0, 5}, {4, 9}, {9, 14}};
  EXPECT_EQ(edge.ContactNearestToTarget(5).pos_v, 5);
  EXPECT_EQ(edge.ContactNearestToTarget(8).pos_v, 9);
  EXPECT_EQ(edge.ContactNearestToTarget(100).pos_v, 14);
  EXPECT_EQ(edge.ContactNearestToTarget(0).pos_v, 5);
}

TEST(StripGraphTest, SideBySideAisleStripsShareFullContact) {
  // Two adjacent aisle columns: contacts at every position.
  WarehouseMatrix m = WarehouseMatrix::FromAscii(
      "#..#\n"
      "#..#\n"
      "#..#\n");
  StripGraph g(m);
  const StripId left = g.StripOf({0, 1});
  const StripId right = g.StripOf({0, 2});
  ASSERT_NE(left, right);
  bool found = false;
  for (const StripEdge& e : g.EdgesOf(left)) {
    if (e.to == right) {
      found = true;
      EXPECT_EQ(e.contacts.size(), 3u);  // one per row
    }
  }
  EXPECT_TRUE(found);
}

TEST(StripGraphTest, PositionInStripConsistent) {
  WarehouseMatrix m = ToyMatrix();
  StripGraph g(m);
  for (std::int32_t i = 0; i < m.height(); ++i) {
    for (std::int32_t j = 0; j < m.width(); ++j) {
      const StripId sid = g.StripOf({i, j});
      const std::int64_t pos = g.PositionInStrip({i, j});
      EXPECT_EQ(g.strip(sid).CellAt(pos), (GridCoord{i, j}));
    }
  }
}

TEST(StripGraphTest, PaperReductionRatioOnPresetW1) {
  // Table II: strips reduce vertices to ~16% and edges to ~23% of the
  // grid representation. Our synthetic W-1 should land in the same
  // ballpark (below 25% for both).
  layout::Warehouse w =
      layout::GenerateWarehouse(layout::PresetByName("W-1"));
  StripGraph g(w.matrix);
  const double vertex_ratio =
      static_cast<double>(g.vertex_count()) /
      static_cast<double>(w.matrix.CellCount());
  const double edge_ratio = static_cast<double>(g.edge_count()) /
                            (2.0 * static_cast<double>(w.matrix.CellCount()));
  EXPECT_LT(vertex_ratio, 0.25);
  EXPECT_GT(vertex_ratio, 0.02);
  EXPECT_LT(edge_ratio, 0.35);
  EXPECT_GT(edge_ratio, 0.02);
}

TEST(StripGraphTest, AllAisleMatrixIsAllLatitudinal) {
  WarehouseMatrix m(4, 5);
  StripGraph g(m);
  EXPECT_EQ(g.vertex_count(), 4);
  for (const Strip& s : g.strips()) {
    EXPECT_EQ(s.dir, Direction::kLatitudinal);
  }
  EXPECT_EQ(g.edge_count(), 3);
}

}  // namespace
}  // namespace carp::srp
