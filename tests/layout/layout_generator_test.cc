#include "layout/layout_generator.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/spatial_paths.h"
#include "layout/presets.h"

namespace carp::layout {
namespace {

TEST(LayoutGeneratorTest, TinyPresetBasicInvariants) {
  Warehouse w = GenerateWarehouse(PresetTiny());
  EXPECT_EQ(w.matrix.height(), 40);
  EXPECT_EQ(w.matrix.width(), 30);
  EXPECT_GT(w.matrix.RackCount(), 0);
  EXPECT_EQ(w.pickers.size(), 6u);
  EXPECT_EQ(w.robot_homes.size(), 12u);
  EXPECT_TRUE(core::SpatialPathFinder::AislesConnected(w.matrix));
}

TEST(LayoutGeneratorTest, EveryRackHasAisleAccess) {
  Warehouse w = GenerateWarehouse(PresetTiny());
  ASSERT_EQ(w.racks.size(), w.rack_access.size());
  for (std::size_t i = 0; i < w.racks.size(); ++i) {
    EXPECT_TRUE(w.matrix.IsRack(w.racks[i]));
    EXPECT_TRUE(w.matrix.IsTraversable(w.rack_access[i]));
    EXPECT_EQ(ManhattanDistance(w.racks[i], w.rack_access[i]), 1);
  }
  // With 2-wide clusters, every rack cell is accessible.
  EXPECT_EQ(static_cast<std::int64_t>(w.racks.size()),
            w.matrix.RackCount());
}

TEST(LayoutGeneratorTest, PickersAreDistinctTraversableCells) {
  Warehouse w = GenerateWarehouse(PresetSmall());
  std::set<GridCoord> unique(w.pickers.begin(), w.pickers.end());
  EXPECT_EQ(unique.size(), w.pickers.size());
  for (GridCoord p : w.pickers) {
    EXPECT_TRUE(w.matrix.IsTraversable(p));
  }
}

TEST(LayoutGeneratorTest, RobotHomesAreDistinctAndAvoidPickers) {
  Warehouse w = GenerateWarehouse(PresetSmall());
  std::set<GridCoord> homes(w.robot_homes.begin(), w.robot_homes.end());
  EXPECT_EQ(homes.size(), w.robot_homes.size());
  for (GridCoord h : w.robot_homes) {
    EXPECT_TRUE(w.matrix.IsTraversable(h));
    EXPECT_EQ(std::count(w.pickers.begin(), w.pickers.end(), h), 0);
  }
}

TEST(LayoutGeneratorTest, MarginRingIsOpen) {
  LayoutConfig c = PresetTiny();
  Warehouse w = GenerateWarehouse(c);
  for (std::int32_t j = 0; j < c.width; ++j) {
    for (std::int32_t i = 0; i < c.margin; ++i) {
      EXPECT_FALSE(w.matrix.IsRack({i, j}));
      EXPECT_FALSE(w.matrix.IsRack({c.height - 1 - i, j}));
    }
  }
}

TEST(LayoutGeneratorTest, ClustersAreExactlyTwoByL) {
  LayoutConfig c = PresetTiny();
  Warehouse w = GenerateWarehouse(c);
  // Every rack cell sits in a horizontal run of exactly cluster_cols cells
  // and a vertical run of exactly cluster_length cells.
  for (std::int32_t i = 0; i < c.height; ++i) {
    for (std::int32_t j = 0; j < c.width; ++j) {
      if (!w.matrix.IsRack({i, j})) continue;
      int h_run = 1;
      for (std::int32_t k = j - 1; k >= 0 && w.matrix.IsRack({i, k}); --k)
        ++h_run;
      for (std::int32_t k = j + 1; k < c.width && w.matrix.IsRack({i, k});
           ++k)
        ++h_run;
      EXPECT_EQ(h_run, c.cluster_cols);
      int v_run = 1;
      for (std::int32_t k = i - 1; k >= 0 && w.matrix.IsRack({k, j}); --k)
        ++v_run;
      for (std::int32_t k = i + 1; k < c.height && w.matrix.IsRack({k, j});
           ++k)
        ++v_run;
      EXPECT_EQ(v_run, c.cluster_length);
    }
  }
}

TEST(LayoutGeneratorTest, DeterministicForSameConfig) {
  Warehouse a = GenerateWarehouse(PresetTiny());
  Warehouse b = GenerateWarehouse(PresetTiny());
  EXPECT_EQ(a.matrix.ToAscii(), b.matrix.ToAscii());
  EXPECT_EQ(a.robot_homes, b.robot_homes);
  EXPECT_EQ(a.pickers, b.pickers);
}

struct PresetExpectation {
  const char* name;
  std::int32_t height;
  std::int32_t width;
  std::int64_t paper_racks;
  std::int32_t pickers;
  std::int32_t robots;
};

class PaperPresetTest : public ::testing::TestWithParam<PresetExpectation> {};

TEST_P(PaperPresetTest, MatchesTableTwoWithinTolerance) {
  const PresetExpectation& e = GetParam();
  Warehouse w = GenerateWarehouse(PresetByName(e.name));
  EXPECT_EQ(w.matrix.height(), e.height);
  EXPECT_EQ(w.matrix.width(), e.width);
  EXPECT_EQ(static_cast<std::int32_t>(w.pickers.size()), e.pickers);
  EXPECT_EQ(static_cast<std::int32_t>(w.robot_homes.size()), e.robots);
  // Rack counts within 15% of the paper's (exact positions proprietary).
  const double ratio = static_cast<double>(w.matrix.RackCount()) /
                       static_cast<double>(e.paper_racks);
  EXPECT_GT(ratio, 0.85) << "racks=" << w.matrix.RackCount();
  EXPECT_LT(ratio, 1.15) << "racks=" << w.matrix.RackCount();
  EXPECT_TRUE(core::SpatialPathFinder::AislesConnected(w.matrix));
}

INSTANTIATE_TEST_SUITE_P(
    TableTwo, PaperPresetTest,
    ::testing::Values(PresetExpectation{"W-1", 233, 104, 4896, 68, 408},
                      PresetExpectation{"W-2", 240, 206, 9792, 136, 952},
                      PresetExpectation{"W-3", 292, 278, 15088, 184, 2208}));

// Parameter sweep: the generator must stay well-formed across geometries.
struct SweepParam {
  std::int32_t height, width, l, aisle, cross, margin;
};

class LayoutSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(LayoutSweepTest, GeneratedLayoutWellFormed) {
  const SweepParam& p = GetParam();
  LayoutConfig c;
  c.height = p.height;
  c.width = p.width;
  c.cluster_length = p.l;
  c.aisle_width = p.aisle;
  c.cross_aisle_height = p.cross;
  c.margin = p.margin;
  c.num_pickers = 4;
  c.num_robots = 8;
  Warehouse w = GenerateWarehouse(c);
  EXPECT_TRUE(core::SpatialPathFinder::AislesConnected(w.matrix));
  EXPECT_EQ(static_cast<std::int64_t>(w.racks.size()),
            w.matrix.RackCount());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LayoutSweepTest,
    ::testing::Values(SweepParam{30, 20, 3, 1, 1, 2},
                      SweepParam{48, 36, 6, 2, 3, 3},
                      SweepParam{64, 64, 8, 1, 2, 2},
                      SweepParam{80, 40, 4, 3, 4, 4},
                      SweepParam{25, 25, 5, 2, 2, 2},
                      SweepParam{100, 30, 10, 2, 5, 5}));

using LayoutGeneratorDeathTest = ::testing::Test;

TEST(LayoutGeneratorDeathTest, RejectsOversizedMargin) {
  LayoutConfig c = PresetTiny();
  c.margin = 20;  // 2*20 >= min(height, width)
  EXPECT_DEATH(GenerateWarehouse(c), "margin");
}

TEST(LayoutGeneratorDeathTest, RejectsTooManyRobots) {
  LayoutConfig c = PresetTiny();
  c.num_robots = 100000;
  EXPECT_DEATH(GenerateWarehouse(c), "not enough aisle cells");
}

}  // namespace
}  // namespace carp::layout
