#include "layout/layout_io.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "layout/layout_generator.h"
#include "layout/presets.h"

namespace carp::layout {
namespace {

TEST(LayoutIoTest, SerializeMarksInstallations) {
  Warehouse w = GenerateWarehouse(PresetTiny());
  const std::string text = WarehouseToAscii(w);
  EXPECT_EQ(std::count(text.begin(), text.end(), 'P') +
                std::count(text.begin(), text.end(), '*'),
            static_cast<std::ptrdiff_t>(w.pickers.size()));
  EXPECT_EQ(std::count(text.begin(), text.end(), '#'),
            w.matrix.RackCount());
}

TEST(LayoutIoTest, RoundTripPreservesEverything) {
  Warehouse original = GenerateWarehouse(PresetTiny());
  Warehouse parsed = ParseWarehouse(WarehouseToAscii(original));

  EXPECT_EQ(parsed.matrix.ToAscii(), original.matrix.ToAscii());

  auto sorted = [](std::vector<GridCoord> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(parsed.pickers), sorted(original.pickers));
  EXPECT_EQ(sorted(parsed.robot_homes), sorted(original.robot_homes));
  EXPECT_EQ(parsed.racks.size(), original.racks.size());
  EXPECT_EQ(parsed.config.height, original.matrix.height());
  EXPECT_EQ(parsed.config.width, original.matrix.width());
}

TEST(LayoutIoTest, SharedPickerRobotCellUsesStar) {
  Warehouse w;
  w.matrix = core::WarehouseMatrix(2, 2);
  w.pickers = {{0, 0}};
  w.robot_homes = {{0, 0}, {1, 1}};
  const std::string text = WarehouseToAscii(w);
  EXPECT_NE(text.find('*'), std::string::npos);

  Warehouse parsed = ParseWarehouse(text);
  EXPECT_EQ(parsed.pickers.size(), 1u);
  EXPECT_EQ(parsed.robot_homes.size(), 2u);
}

TEST(LayoutIoTest, ParseRecomputesRackAccess) {
  const std::string text =
      "....\n"
      ".#..\n"
      "....\n";
  Warehouse w = ParseWarehouse(text);
  ASSERT_EQ(w.racks.size(), 1u);
  EXPECT_EQ(w.racks[0], (GridCoord{1, 1}));
  EXPECT_EQ(ManhattanDistance(w.racks[0], w.rack_access[0]), 1);
}

TEST(LayoutIoTest, FullySurroundedRackHasNoAccess) {
  const std::string text =
      "###\n"
      "###\n"
      "###\n";
  Warehouse w = ParseWarehouse(text);
  // Centre rack has no aisle neighbour; border racks none either.
  EXPECT_TRUE(w.racks.empty());
}

using LayoutIoDeathTest = ::testing::Test;

TEST(LayoutIoDeathTest, RejectsUnknownCharacter) {
  EXPECT_DEATH(ParseWarehouse("..\n.Z\n"), "bad map character");
}

}  // namespace
}  // namespace carp::layout
