#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "baselines/planner_factory.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "sim/experiment_runner.h"
#include "workload/task_generator.h"

namespace carp::sim {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  layout::Warehouse warehouse_ =
      layout::GenerateWarehouse(layout::PresetTiny());

  std::vector<workload::DeliveryTask> MakeTasks(int n, TimeStep day) {
    workload::TaskGeneratorOptions opts;
    opts.task_count = n;
    opts.day_length = day;
    opts.seed = 7;
    return workload::GenerateTasks(
        warehouse_, workload::ArrivalProfile::Uniform(), opts);
  }
};

TEST_F(SimulatorTest, AllTasksFinishWithSrp) {
  auto planner = baselines::MakePlanner("SRP", warehouse_.matrix);
  Simulator sim(warehouse_, *planner);
  RunMetrics m = sim.Run(MakeTasks(30, 300));
  EXPECT_EQ(m.finished_tasks, 30);
  EXPECT_EQ(m.total_tasks, 30);
  EXPECT_TRUE(m.validated);
  EXPECT_TRUE(m.collision_free);
  EXPECT_GT(m.makespan, 0);
  EXPECT_GT(m.total_tc_seconds, 0.0);
  EXPECT_GT(m.peak_mc_bytes, 0u);
}

TEST_F(SimulatorTest, MetricsSamplesAreMonotone) {
  auto planner = baselines::MakePlanner("SRP", warehouse_.matrix);
  SimulatorOptions options;
  options.sample_points = 10;
  Simulator sim(warehouse_, *planner, options);
  RunMetrics m = sim.Run(MakeTasks(40, 400));
  ASSERT_GE(m.samples.size(), 2u);
  for (std::size_t i = 1; i < m.samples.size(); ++i) {
    EXPECT_GE(m.samples[i].progress, m.samples[i - 1].progress);
    EXPECT_GE(m.samples[i].tc_seconds, m.samples[i - 1].tc_seconds);
  }
  EXPECT_DOUBLE_EQ(m.samples.back().progress, 1.0);
}

TEST_F(SimulatorTest, MakespanCoversAllRoutes) {
  auto planner = baselines::MakePlanner("SAP", warehouse_.matrix);
  Simulator sim(warehouse_, *planner);
  RunMetrics m = sim.Run(MakeTasks(20, 200));
  for (const auto& r : planner->committed_routes()) {
    EXPECT_LE(r.finish_term(), m.makespan);
  }
}

TEST_F(SimulatorTest, StageSequencingProducesThreeRoutesPerTask) {
  auto planner = baselines::MakePlanner("SRP", warehouse_.matrix);
  Simulator sim(warehouse_, *planner);
  RunMetrics m = sim.Run(MakeTasks(15, 600));
  EXPECT_EQ(m.failed_queries, 0);
  EXPECT_EQ(planner->committed_routes().size(), 45u);
}

TEST_F(SimulatorTest, EmptyTaskListNoWork) {
  auto planner = baselines::MakePlanner("SRP", warehouse_.matrix);
  Simulator sim(warehouse_, *planner);
  RunMetrics m = sim.Run({});
  EXPECT_EQ(m.finished_tasks, 0);
  EXPECT_EQ(m.makespan, 0);
  EXPECT_TRUE(m.collision_free);
}

TEST_F(SimulatorTest, MoreRobotsThanTasksStillFine) {
  auto planner = baselines::MakePlanner("SRP", warehouse_.matrix);
  Simulator sim(warehouse_, *planner);
  RunMetrics m = sim.Run(MakeTasks(3, 10));
  EXPECT_EQ(m.finished_tasks, 3);
}

class SimulatorAlgorithmTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SimulatorAlgorithmTest, DayCompletesCollisionFree) {
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  auto planner = baselines::MakePlanner(GetParam(), warehouse.matrix);
  ASSERT_NE(planner, nullptr);

  workload::TaskGeneratorOptions opts;
  opts.task_count = 25;
  opts.day_length = 250;
  opts.seed = 3;
  const auto tasks = workload::GenerateTasks(
      warehouse, workload::ArrivalProfile::DoubleSurge(), opts);

  Simulator sim(warehouse, *planner);
  RunMetrics m = sim.Run(tasks);
  EXPECT_EQ(m.finished_tasks, 25) << GetParam();
  EXPECT_TRUE(m.collision_free) << GetParam();
  EXPECT_LT(m.failed_queries, 3) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllPlanners, SimulatorAlgorithmTest,
                         ::testing::Values("SAP", "RP", "TWP", "ACP", "SRP",
                                           "SRP-noindex"));

TEST(ExperimentRunnerTest, RunsPairedDaysAcrossAlgorithms) {
  ExperimentConfig config;
  config.scenario = workload::PaperScenario("W-1");
  config.scenario.layout = layout::PresetTiny();  // shrink for the test
  config.scenario.day_length = 400;
  config.scale = 0.001;  // 45 tasks on day 1
  config.days = 2;
  config.algorithms = {"SRP", "ACP"};
  config.simulator.sample_points = 5;

  auto results = RunExperiment(config);
  ASSERT_EQ(results.size(), 4u);  // 2 days x 2 algorithms
  EXPECT_EQ(results[0].algorithm, "SRP");
  EXPECT_EQ(results[1].algorithm, "ACP");
  EXPECT_EQ(results[0].day, 1);
  EXPECT_EQ(results[2].day, 2);
  for (const auto& r : results) {
    EXPECT_EQ(r.scenario, "W-1");
    EXPECT_TRUE(r.collision_free);
    EXPECT_EQ(r.finished_tasks, r.total_tasks);
  }
}

}  // namespace
}  // namespace carp::sim
