#include "sim/event_trace.h"

#include <gtest/gtest.h>

#include "baselines/planner_factory.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "sim/simulator.h"
#include "workload/task_generator.h"

namespace carp::sim {
namespace {

TraceEvent Planned(TimeStep t, std::int64_t task, std::int64_t micros) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kStagePlanned;
  e.sim_time = t;
  e.task_id = task;
  e.stage = workload::QueryStage::kPickup;
  e.robot = 3;
  e.plan_micros = micros;
  e.route_length = 10;
  e.route_waits = 2;
  return e;
}

TEST(EventTraceTest, RecordsAndClears) {
  EventTrace trace;
  trace.Record(Planned(5, 1, 100));
  EXPECT_EQ(trace.size(), 1u);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(EventTraceTest, JsonLinesShape) {
  EventTrace trace;
  TraceEvent arrival;
  arrival.kind = TraceEvent::Kind::kTaskArrival;
  arrival.sim_time = 7;
  arrival.task_id = 42;
  trace.Record(arrival);
  trace.Record(Planned(8, 42, 55));

  const std::string jsonl = trace.ToJsonLines();
  EXPECT_NE(jsonl.find("{\"kind\":\"task_arrival\",\"t\":7,\"task\":42}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"stage_planned\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"plan_us\":55"), std::string::npos);
  EXPECT_NE(jsonl.find("\"stage\":\"pickup\""), std::string::npos);
  // Exactly one line per event.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

TEST(EventTraceTest, AggregateBySlotBucketsCorrectly) {
  EventTrace trace;
  // Two plans in slot 0, one failure in slot 1, one arrival in slot 3.
  trace.Record(Planned(10, 1, 100));
  trace.Record(Planned(20, 2, 300));
  TraceEvent fail;
  fail.kind = TraceEvent::Kind::kPlanFailed;
  fail.sim_time = 120;
  trace.Record(fail);
  TraceEvent arrival;
  arrival.kind = TraceEvent::Kind::kTaskArrival;
  arrival.sim_time = 390;
  trace.Record(arrival);

  const auto slots = trace.AggregateBySlot(400, 4);
  ASSERT_EQ(slots.size(), 4u);
  EXPECT_EQ(slots[0].plans, 2);
  EXPECT_DOUBLE_EQ(slots[0].mean_plan_micros, 200.0);
  EXPECT_DOUBLE_EQ(slots[0].mean_route_length, 10.0);
  EXPECT_EQ(slots[1].failures, 1);
  EXPECT_EQ(slots[2].plans, 0);
  EXPECT_EQ(slots[3].arrivals, 1);
}

TEST(EventTraceTest, OutOfHorizonEventsClampToLastSlot) {
  EventTrace trace;
  trace.Record(Planned(10'000, 1, 10));
  const auto slots = trace.AggregateBySlot(100, 2);
  EXPECT_EQ(slots[1].plans, 1);
}

TEST(EventTraceTest, SimulatorPopulatesTrace) {
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  auto planner = baselines::MakePlanner("SRP", warehouse.matrix);

  workload::TaskGeneratorOptions topts;
  topts.task_count = 10;
  topts.day_length = 100;
  topts.seed = 4;
  const auto tasks = workload::GenerateTasks(
      warehouse, workload::ArrivalProfile::Uniform(), topts);

  EventTrace trace;
  SimulatorOptions options;
  options.trace = &trace;
  Simulator sim(warehouse, *planner, options);
  const RunMetrics metrics = sim.Run(tasks);
  EXPECT_EQ(metrics.finished_tasks, 10);

  std::int64_t arrivals = 0, plans = 0, dones = 0;
  for (const auto& e : trace.events()) {
    switch (e.kind) {
      case TraceEvent::Kind::kTaskArrival: ++arrivals; break;
      case TraceEvent::Kind::kStagePlanned: ++plans; break;
      case TraceEvent::Kind::kTaskDone: ++dones; break;
      default: break;
    }
  }
  EXPECT_EQ(arrivals, 10);
  EXPECT_EQ(plans, 30);  // three stages per task
  EXPECT_EQ(dones, 10);
}

using EventTraceDeathTest = ::testing::Test;

TEST(EventTraceDeathTest, AggregateRejectsBadArgs) {
  EventTrace trace;
  EXPECT_DEATH(trace.AggregateBySlot(0, 4), "");
  EXPECT_DEATH(trace.AggregateBySlot(100, 0), "");
}

}  // namespace
}  // namespace carp::sim
