#include "sim/assignment.h"

#include <gtest/gtest.h>

namespace carp::sim {
namespace {

const std::vector<GridCoord> kHomes = {{0, 0}, {5, 5}, {9, 9}};

TEST(RobotAssignerTest, NearestPicksClosest) {
  RobotAssigner assigner(kHomes, AssignmentPolicy::kNearest);
  auto robot = assigner.Acquire({6, 6});
  ASSERT_TRUE(robot.has_value());
  EXPECT_EQ(*robot, 1);
}

TEST(RobotAssignerTest, FifoIgnoresDistance) {
  RobotAssigner assigner(kHomes, AssignmentPolicy::kFifo);
  auto robot = assigner.Acquire({9, 9});
  ASSERT_TRUE(robot.has_value());
  EXPECT_EQ(*robot, 0);  // lowest index, not the nearest
}

TEST(RobotAssignerTest, LeastWorkedBalances) {
  RobotAssigner assigner(kHomes, AssignmentPolicy::kLeastWorked);
  // Acquire/release repeatedly to the same target: assignments must rotate
  // across the whole fleet instead of hammering the nearest robot.
  for (int round = 0; round < 6; ++round) {
    auto robot = assigner.Acquire({0, 0});
    ASSERT_TRUE(robot.has_value());
    assigner.Release(*robot, kHomes[static_cast<std::size_t>(*robot)]);
  }
  EXPECT_EQ(assigner.MaxAssignments(), 2);
  EXPECT_EQ(assigner.MinAssignments(), 2);
}

TEST(RobotAssignerTest, NearestConcentratesWork) {
  RobotAssigner assigner(kHomes, AssignmentPolicy::kNearest);
  for (int round = 0; round < 6; ++round) {
    auto robot = assigner.Acquire({0, 0});
    ASSERT_TRUE(robot.has_value());
    assigner.Release(*robot, kHomes[static_cast<std::size_t>(*robot)]);
  }
  EXPECT_EQ(assigner.MaxAssignments(), 6);
  EXPECT_EQ(assigner.MinAssignments(), 0);
  EXPECT_EQ(assigner.AssignmentsOf(0), 6);
}

TEST(RobotAssignerTest, ExhaustionReturnsNullopt) {
  RobotAssigner assigner(kHomes, AssignmentPolicy::kNearest);
  EXPECT_TRUE(assigner.Acquire({0, 0}).has_value());
  EXPECT_TRUE(assigner.Acquire({0, 0}).has_value());
  EXPECT_TRUE(assigner.Acquire({0, 0}).has_value());
  EXPECT_FALSE(assigner.Acquire({0, 0}).has_value());
  EXPECT_EQ(assigner.idle_count(), 0u);
}

TEST(RobotAssignerTest, ReleaseUpdatesPosition) {
  RobotAssigner assigner(kHomes, AssignmentPolicy::kNearest);
  auto robot = assigner.Acquire({0, 0});
  ASSERT_TRUE(robot.has_value());
  assigner.Release(*robot, {7, 7});
  EXPECT_EQ(assigner.PositionOf(*robot), (GridCoord{7, 7}));
}

TEST(RobotAssignerTest, PolicyNames) {
  EXPECT_STREQ(ToString(AssignmentPolicy::kNearest), "nearest");
  EXPECT_STREQ(ToString(AssignmentPolicy::kFifo), "fifo");
  EXPECT_STREQ(ToString(AssignmentPolicy::kLeastWorked), "least-worked");
}

}  // namespace
}  // namespace carp::sim
