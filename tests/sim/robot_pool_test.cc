#include "sim/robot_pool.h"

#include <gtest/gtest.h>

namespace carp::sim {
namespace {

TEST(RobotPoolTest, StartsAllIdleAtHomes) {
  RobotPool pool({{0, 0}, {5, 5}, {9, 9}});
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.idle_count(), 3u);
  EXPECT_EQ(pool.PositionOf(1), (GridCoord{5, 5}));
  EXPECT_TRUE(pool.IsIdle(0));
}

TEST(RobotPoolTest, AcquireNearestPicksClosest) {
  RobotPool pool({{0, 0}, {5, 5}, {9, 9}});
  auto robot = pool.AcquireNearest({6, 6});
  ASSERT_TRUE(robot.has_value());
  EXPECT_EQ(*robot, 1);
  EXPECT_FALSE(pool.IsIdle(1));
  EXPECT_EQ(pool.idle_count(), 2u);
}

TEST(RobotPoolTest, AcquireExhaustsPool) {
  RobotPool pool({{0, 0}, {1, 1}});
  EXPECT_TRUE(pool.AcquireNearest({0, 0}).has_value());
  EXPECT_TRUE(pool.AcquireNearest({0, 0}).has_value());
  EXPECT_FALSE(pool.AcquireNearest({0, 0}).has_value());
  EXPECT_EQ(pool.idle_count(), 0u);
}

TEST(RobotPoolTest, ReleaseUpdatesPosition) {
  RobotPool pool({{0, 0}});
  auto robot = pool.AcquireNearest({3, 3});
  ASSERT_TRUE(robot.has_value());
  pool.Release(*robot, {7, 2});
  EXPECT_TRUE(pool.IsIdle(*robot));
  EXPECT_EQ(pool.PositionOf(*robot), (GridCoord{7, 2}));
  // The next acquire sees the new position.
  auto again = pool.AcquireNearest({7, 3});
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *robot);
}

TEST(RobotPoolTest, NearestBreaksTiesDeterministically) {
  RobotPool pool({{0, 2}, {2, 0}});  // both distance 2 from (0,0)
  auto robot = pool.AcquireNearest({0, 0});
  ASSERT_TRUE(robot.has_value());
  EXPECT_EQ(*robot, 0);  // first index wins
}

using RobotPoolDeathTest = ::testing::Test;

TEST(RobotPoolDeathTest, EmptyPoolRejected) {
  EXPECT_DEATH(RobotPool({}), "at least one robot");
}

TEST(RobotPoolDeathTest, DoubleReleaseDies) {
  RobotPool pool({{0, 0}});
  auto robot = pool.AcquireNearest({0, 0});
  pool.Release(*robot, {0, 0});
  EXPECT_DEATH(pool.Release(*robot, {0, 0}), "idle robot");
}

}  // namespace
}  // namespace carp::sim
