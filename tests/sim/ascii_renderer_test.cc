#include "sim/ascii_renderer.h"

#include <gtest/gtest.h>

#include "layout/layout_io.h"

namespace carp::sim {
namespace {

layout::Warehouse TinyMap() {
  return layout::ParseWarehouse(
      "....\n"
      ".#P.\n"
      "....\n");
}

TEST(AsciiRendererTest, FrameShowsStaticsWithoutRobots) {
  layout::Warehouse w = TinyMap();
  AsciiRenderer renderer(w);
  EXPECT_EQ(renderer.Frame({}, 0),
            "....\n"
            ".#P.\n"
            "....\n");
}

TEST(AsciiRendererTest, RobotDrawnAtItsTimePosition) {
  layout::Warehouse w = TinyMap();
  AsciiRenderer renderer(w);
  core::Route route(2, {{0, 0}, {0, 1}, {0, 2}});
  EXPECT_EQ(renderer.Frame({route}, 2)[0], '0');
  EXPECT_EQ(renderer.Frame({route}, 3)[1], '0');
  // Outside the span the robot is gone.
  EXPECT_EQ(renderer.Frame({route}, 5),
            "....\n"
            ".#P.\n"
            "....\n");
}

TEST(AsciiRendererTest, CollisionMarkedWithStar) {
  layout::Warehouse w = TinyMap();
  AsciiRenderer renderer(w);
  core::Route r1(0, {{0, 0}});
  core::Route r2(0, {{0, 0}});
  const std::string frame = renderer.Frame({r1, r2}, 0);
  EXPECT_EQ(frame[0], '*');
}

TEST(AsciiRendererTest, DistinctGlyphsPerRoute) {
  layout::Warehouse w = TinyMap();
  AsciiRenderer renderer(w);
  core::Route r1(0, {{0, 0}});
  core::Route r2(0, {{2, 3}});
  const std::string frame = renderer.Frame({r1, r2}, 0);
  EXPECT_EQ(frame[0], '0');
  // Row-major with newlines: (2,3) is at index 2*(4+1)+3.
  EXPECT_EQ(frame[2 * 5 + 3], '1');
}

TEST(AsciiRendererTest, TrajectoryMarksEndpointsAndPath) {
  layout::Warehouse w = TinyMap();
  AsciiRenderer renderer(w);
  core::Route route(0, {{0, 0}, {0, 1}, {0, 2}, {0, 3}});
  const std::string t = renderer.Trajectory(route);
  EXPECT_EQ(t[0], 'o');
  EXPECT_EQ(t[1], '+');
  EXPECT_EQ(t[2], '+');
  EXPECT_EQ(t[3], 'x');
}

TEST(AsciiRendererTest, AnimateEmitsOneFramePerStep) {
  layout::Warehouse w = TinyMap();
  AsciiRenderer renderer(w);
  core::Route route(0, {{0, 0}, {0, 1}});
  const std::string film = renderer.Animate({route}, 0, 1);
  EXPECT_NE(film.find("t=0\n"), std::string::npos);
  EXPECT_NE(film.find("t=1\n"), std::string::npos);
}

}  // namespace
}  // namespace carp::sim
