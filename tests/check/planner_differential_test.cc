// Planner-level differential scenarios (DESIGN.md §2d): every backend
// through the same random day, retire/prune on and off, serial and
// speculative dispatch — collision-freedom, SRP-vs-noindex equality and
// lifecycle accounting cross-checked in one harness.
#include <gtest/gtest.h>

#include "check/planner_differential.h"

namespace carp::check {
namespace {

TEST(PlannerDifferentialTest, RetireAndPruneScenarioAllBackendsAgree) {
  PlannerDiffOptions opt;
  opt.seed = 3;
  opt.tasks = 30;
  opt.retire_routes = true;
  const PlannerDiffResult r = RunPlannerDifferential(opt);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(PlannerDifferentialTest, KeepEverythingScenarioAllBackendsAgree) {
  PlannerDiffOptions opt;
  opt.seed = 7;
  opt.tasks = 24;
  opt.retire_routes = false;
  const PlannerDiffResult r = RunPlannerDifferential(opt);
  EXPECT_TRUE(r.ok) << r.error;
}

}  // namespace
}  // namespace carp::check
