// Planner-level differential scenarios (DESIGN.md §2d): every backend
// through the same random day, retire/prune on and off, serial and
// speculative dispatch — collision-freedom, SRP-vs-noindex equality and
// lifecycle accounting cross-checked in one harness.
#include <gtest/gtest.h>

#include "check/planner_differential.h"

namespace carp::check {
namespace {

TEST(PlannerDifferentialTest, RetireAndPruneScenarioAllBackendsAgree) {
  PlannerDiffOptions opt;
  opt.seed = 3;
  opt.tasks = 30;
  opt.retire_routes = true;
  const PlannerDiffResult r = RunPlannerDifferential(opt);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(PlannerDifferentialTest, KeepEverythingScenarioAllBackendsAgree) {
  PlannerDiffOptions opt;
  opt.seed = 7;
  opt.tasks = 24;
  opt.retire_routes = false;
  const PlannerDiffResult r = RunPlannerDifferential(opt);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(PlannerDifferentialTest, ManhattanModeScenarioAgrees) {
  PlannerDiffOptions opt;
  opt.seed = 11;
  opt.tasks = 24;
  opt.heuristic = core::HeuristicMode::kManhattan;
  const PlannerDiffResult r = RunPlannerDifferential(opt);
  EXPECT_TRUE(r.ok) << r.error;
}

/// StoreFault::kCorruptHeuristicEntry calibration (ISSUE 9 satellite): the
/// heuristic cost-mismatch audit must flag an inadmissible table within a
/// 20-seed budget, and the paired clean control must never diverge.
TEST(PlannerDifferentialTest, HeuristicFaultCalibrationDetectsCorruption) {
  const HeuristicFaultResult r = RunHeuristicFaultCalibration(20);
  EXPECT_TRUE(r.detected) << r.detail;
  EXPECT_LE(r.seeds_tried, 20);
  EXPECT_GT(r.detected_seed, 0u);
  SCOPED_TRACE(r.detail);
}

/// StoreFault::kOverwideInterval calibration: the engine differential's
/// cost-equality + collision audits must flag an interval extractor whose
/// upper bounds leak one step into the ending reservation, within a
/// 20-seed budget — and the paired clean control must never diverge.
TEST(PlannerDifferentialTest, EngineFaultCalibrationDetectsOverwideBounds) {
  const EngineFaultResult r = RunEngineFaultCalibration(20);
  EXPECT_TRUE(r.detected) << r.detail;
  EXPECT_LE(r.seeds_tried, 20);
  EXPECT_GT(r.detected_seed, 0u);
  SCOPED_TRACE(r.detail);
}

}  // namespace
}  // namespace carp::check
