// The differential store fuzzer (DESIGN.md §2d): the production stores
// must survive the CI seed budget, and a store with a deliberately
// injected bug must be caught well inside it — otherwise the harness is
// theater.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "check/faulty_store.h"
#include "check/store_fuzzer.h"

namespace carp::check {
namespace {

TEST(StoreFuzzTest, ProductionStoresSurviveSeedBudget) {
  StoreFuzzOptions opt;
  opt.num_seeds = 50;
  const StoreFuzzResult r = FuzzStores(opt, DefaultStoreFactories());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.ops_executed,
            static_cast<std::int64_t>(opt.num_seeds) * opt.ops_per_seed);
}

class InjectedFaultTest : public ::testing::TestWithParam<StoreFault> {};

TEST_P(InjectedFaultTest, CaughtWithinSmokeBudget) {
  const StoreFault fault = GetParam();
  auto factories = DefaultStoreFactories();
  factories.push_back(NamedStoreFactory{
      "faulty", [fault] { return std::make_unique<FaultySegmentStore>(fault); }});

  StoreFuzzOptions opt;
  opt.num_seeds = 20;  // a tenth of the CI smoke budget
  const StoreFuzzResult r = FuzzStores(opt, factories);
  ASSERT_FALSE(r.ok) << "injected bug survived " << r.ops_executed << " ops";
  // The report names the diverging store and the seed that replays it.
  EXPECT_NE(r.error.find("faulty"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("seed"), std::string::npos) << r.error;
}

INSTANTIATE_TEST_SUITE_P(AllFaults, InjectedFaultTest,
                         ::testing::Values(StoreFault::kGhostInsert,
                                           StoreFault::kDropRemove,
                                           StoreFault::kPruneOffByOne,
                                           StoreFault::kStaleSummary,
                                           StoreFault::kCorruptSimdTail));

// ---- Shard-accounting fuzz (DESIGN.md §2h). kCrossShardLeak lives here,
// not in the FaultySegmentStore matrix above: the fault corrupts the
// ShardMap *ledger*, not a store, so only the per-shard audit can see it.

TEST(ShardFuzzTest, CleanLedgerSurvivesSeedBudget) {
  ShardFuzzOptions opt;
  opt.num_seeds = 20;
  const StoreFuzzResult r =
      FuzzShardAccounting(opt, /*inject_cross_shard_leak=*/false);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.ops_executed,
            static_cast<std::int64_t>(opt.num_seeds) * opt.ops_per_seed);
}

TEST(ShardFuzzTest, CrossShardLeakCaughtWithinSmokeBudget) {
  ShardFuzzOptions opt;
  opt.num_seeds = 20;  // the ISSUE's 20-seed detection budget
  const StoreFuzzResult r =
      FuzzShardAccounting(opt, /*inject_cross_shard_leak=*/true);
  ASSERT_FALSE(r.ok) << "cross-shard leak survived " << r.ops_executed
                     << " ops";
  // The report names the disagreeing shard and the seed that replays it.
  EXPECT_NE(r.error.find("shard"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("seed"), std::string::npos) << r.error;
}

TEST(ShardFuzzTest, LeakReportReplaysDeterministically) {
  ShardFuzzOptions opt;
  opt.num_seeds = 20;
  const StoreFuzzResult first =
      FuzzShardAccounting(opt, /*inject_cross_shard_leak=*/true);
  ASSERT_FALSE(first.ok);

  ShardFuzzOptions replay_opt = opt;
  replay_opt.seed = first.failing_seed;
  replay_opt.num_seeds = 1;
  const StoreFuzzResult replay =
      FuzzShardAccounting(replay_opt, /*inject_cross_shard_leak=*/true);
  ASSERT_FALSE(replay.ok);
  EXPECT_EQ(replay.failing_seed, first.failing_seed);
  EXPECT_EQ(replay.error, first.error);
}

// ---- Lifecycle-rollback fuzz (ISSUE 8 satellite; DESIGN.md §2i). The
// LNS refiner's rollback contract — release then recommit is a true no-op
// — exercised at store granularity, with the kLostRollback calibration
// fault proving the after-round audits can actually see a violated
// rollback.

TEST(LifecycleFuzzTest, CleanStoresSurviveSeedBudget) {
  LifecycleFuzzOptions opt;
  opt.num_seeds = 20;
  const StoreFuzzResult r =
      FuzzLifecycleRollback(opt, /*inject_lost_rollback=*/false);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.ops_executed,
            static_cast<std::int64_t>(opt.num_seeds) * opt.rounds_per_seed);
}

TEST(LifecycleFuzzTest, LostRollbackCaughtWithinSmokeBudget) {
  LifecycleFuzzOptions opt;
  opt.num_seeds = 20;  // the ISSUE's calibration budget
  const StoreFuzzResult r =
      FuzzLifecycleRollback(opt, /*inject_lost_rollback=*/true);
  ASSERT_FALSE(r.ok) << "kLostRollback survived " << r.ops_executed
                     << " rounds";
  EXPECT_NE(r.error.find("seed"), std::string::npos) << r.error;
}

TEST(LifecycleFuzzTest, LostRollbackReportReplaysDeterministically) {
  LifecycleFuzzOptions opt;
  opt.num_seeds = 20;
  const StoreFuzzResult first =
      FuzzLifecycleRollback(opt, /*inject_lost_rollback=*/true);
  ASSERT_FALSE(first.ok);

  LifecycleFuzzOptions replay_opt = opt;
  replay_opt.seed = first.failing_seed;
  replay_opt.num_seeds = 1;
  const StoreFuzzResult replay =
      FuzzLifecycleRollback(replay_opt, /*inject_lost_rollback=*/true);
  ASSERT_FALSE(replay.ok);
  EXPECT_EQ(replay.failing_seed, first.failing_seed);
  EXPECT_EQ(replay.error, first.error);
}

TEST(StoreFuzzTest, FailingSeedReplaysDeterministically) {
  auto factories = DefaultStoreFactories();
  factories.push_back(NamedStoreFactory{"faulty", [] {
    return std::make_unique<FaultySegmentStore>(StoreFault::kGhostInsert);
  }});

  StoreFuzzOptions opt;
  opt.num_seeds = 20;
  const StoreFuzzResult first = FuzzStores(opt, factories);
  ASSERT_FALSE(first.ok);

  // Replaying exactly the reported seed (fresh stores, same op stream)
  // reproduces the identical report — the contract behind "replay with
  // --seed=<S>".
  const StoreFuzzResult replay =
      FuzzOneSeed(first.failing_seed, opt, factories);
  ASSERT_FALSE(replay.ok);
  EXPECT_EQ(replay.failing_seed, first.failing_seed);
  EXPECT_EQ(replay.error, first.error);
}

}  // namespace
}  // namespace carp::check
