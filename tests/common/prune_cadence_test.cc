#include "common/prune_cadence.h"

#include <gtest/gtest.h>

#include "common/types.h"

namespace carp {
namespace {

TEST(PruneCadenceTest, FiresAtIntervalWithCutoff) {
  PruneCadence cadence{/*every=*/100, /*slack=*/10, /*last=*/0};
  EXPECT_FALSE(cadence.Due(50).has_value());
  const auto first = cadence.Due(100);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 90);
  // Marker advanced: nothing due until another full interval elapses.
  EXPECT_FALSE(cadence.Due(150).has_value());
  const auto second = cadence.Due(200);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 190);
}

// The ISSUE-8 satellite bug: with slack >= every, the first cadence ticks
// all have non-positive cutoffs. The buggy call sites advanced the marker
// on those skipped ticks, so the first real sweep slid a whole epoch past
// the moment it became possible — and with slack a multiple of every, it
// never fired at all on runs shorter than last+every after the skip.
TEST(PruneCadenceTest, SkippedSweepDoesNotAdvanceCadence) {
  PruneCadence cadence{/*every=*/100, /*slack=*/400, /*last=*/0};

  // Ticks at 100..400: interval elapsed but cutoff <= 0 — no sweep, and
  // crucially the marker must stay put.
  for (TimeStep now = 100; now <= 400; now += 100) {
    EXPECT_FALSE(cadence.Due(now).has_value()) << "now=" << now;
    EXPECT_EQ(cadence.last, 0) << "now=" << now;
  }

  // The first positive-cutoff moment fires immediately. The buggy version
  // (marker advanced at 400) would return nullopt here and not sweep
  // until t=500.
  const auto cutoff = cadence.Due(430);
  ASSERT_TRUE(cutoff.has_value());
  EXPECT_EQ(*cutoff, 30);
  EXPECT_EQ(cadence.last, 430);
}

TEST(PruneCadenceTest, NonFiringCallsLeaveStateUntouched) {
  PruneCadence cadence{/*every=*/64, /*slack=*/8, /*last=*/1000};
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(cadence.Due(1063).has_value());
  }
  EXPECT_EQ(cadence.last, 1000);
  const auto cutoff = cadence.Due(1064);
  ASSERT_TRUE(cutoff.has_value());
  EXPECT_EQ(*cutoff, 1056);
}

}  // namespace
}  // namespace carp
