#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace carp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformU32StaysInBound) {
  Rng rng(7);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU32(bound), bound);
    }
  }
}

TEST(RngTest, UniformU32CoversAllResidues) {
  Rng rng(11);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++hits[rng.UniformU32(10)];
  }
  for (int h : hits) {
    EXPECT_GT(h, 800);   // expected 1000 each; loose 3-sigma-ish bounds
    EXPECT_LT(h, 1200);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRateMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Exponential(2.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.03);  // mean = 1/rate
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 8000; ++i) {
    ++hits[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[2]) / hits[0], 3.0, 0.5);
}

TEST(RngTest, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 0.0, 0.0, 0.0};
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 4000; ++i) {
    std::size_t idx = rng.WeightedIndex(weights);
    ASSERT_LT(idx, weights.size());
    ++hits[idx];
  }
  for (int h : hits) EXPECT_GT(h, 700);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(RngTest, ShuffleHandlesSmallInputs) {
  Rng rng(31);
  std::vector<int> empty;
  rng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {7};
  rng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{7});
}

}  // namespace
}  // namespace carp
