#include "common/types.h"

#include <sstream>
#include <unordered_set>

#include <gtest/gtest.h>

namespace carp {
namespace {

TEST(GridCoordTest, EqualityAndOrdering) {
  EXPECT_EQ((GridCoord{1, 2}), (GridCoord{1, 2}));
  EXPECT_NE((GridCoord{1, 2}), (GridCoord{2, 1}));
  EXPECT_LT((GridCoord{1, 2}), (GridCoord{1, 3}));
  EXPECT_LT((GridCoord{1, 9}), (GridCoord{2, 0}));
}

TEST(GridCoordTest, StreamFormat) {
  std::ostringstream os;
  os << GridCoord{3, 7};
  EXPECT_EQ(os.str(), "(3,7)");
}

TEST(GridCoordTest, HashDistinguishesRowColSwap) {
  std::unordered_set<GridCoord> set;
  set.insert({1, 2});
  set.insert({2, 1});
  set.insert({1, 2});  // duplicate
  EXPECT_EQ(set.size(), 2u);
}

TEST(ManhattanDistanceTest, BasicCases) {
  EXPECT_EQ(ManhattanDistance({0, 0}, {0, 0}), 0);
  EXPECT_EQ(ManhattanDistance({0, 0}, {3, 4}), 7);
  EXPECT_EQ(ManhattanDistance({3, 4}, {0, 0}), 7);  // symmetric
  EXPECT_EQ(ManhattanDistance({-2, 5}, {2, -5}), 14);
}

TEST(ManhattanDistanceTest, TriangleInequality) {
  const GridCoord a{0, 0}, b{5, 9}, c{12, 3};
  EXPECT_LE(ManhattanDistance(a, c),
            ManhattanDistance(a, b) + ManhattanDistance(b, c));
}

TEST(EnumToStringTest, Names) {
  EXPECT_STREQ(ToString(Direction::kLatitudinal), "latitudinal");
  EXPECT_STREQ(ToString(Direction::kLongitudinal), "longitudinal");
  EXPECT_STREQ(ToString(CellKind::kAisle), "aisle");
  EXPECT_STREQ(ToString(CellKind::kRack), "rack");
}

TEST(ConstantsTest, InfiniteTimeHasArithmeticHeadroom) {
  // Planners add horizons/heuristics to times; kInfiniteTime must not
  // overflow when a few warehouse diameters are added.
  EXPECT_GT(kInfiniteTime + 1'000'000, kInfiniteTime);
  EXPECT_LT(kInfiniteTime, std::numeric_limits<TimeStep>::max() / 2);
}

}  // namespace
}  // namespace carp
