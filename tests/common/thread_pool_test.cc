#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>

namespace carp {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, WorkerIndexInRangeOnPoolAndAbsentOffPool) {
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), -1);
  ThreadPool pool(3);
  std::mutex mu;
  std::set<int> seen;
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      const int index = ThreadPool::CurrentWorkerIndex();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(index);
    });
  }
  pool.WaitIdle();
  ASSERT_FALSE(seen.empty());
  for (int index : seen) {
    EXPECT_GE(index, 0);
    EXPECT_LT(index, pool.size());
  }
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), -1);
}

TEST(ThreadPoolTest, WaitIdleWithNoWorkReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ(count.load(), 50 * (round + 1));
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace carp
