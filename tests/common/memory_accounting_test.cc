#include "common/memory_accounting.h"

#include <gtest/gtest.h>

namespace carp {
namespace {

TEST(MemoryAccountingTest, VectorUsesCapacity) {
  std::vector<std::int64_t> v;
  EXPECT_EQ(mem::BytesOf(v), 0u);
  v.reserve(100);
  EXPECT_EQ(mem::BytesOf(v), 100 * sizeof(std::int64_t));
}

TEST(MemoryAccountingTest, MapScalesWithSize) {
  std::map<int, int> m;
  EXPECT_EQ(mem::BytesOf(m), 0u);
  for (int i = 0; i < 10; ++i) m[i] = i;
  EXPECT_EQ(mem::BytesOf(m),
            10 * (sizeof(std::pair<const int, int>) + mem::kNodeOverhead));
}

TEST(MemoryAccountingTest, SetAndMultisetScaleWithSize) {
  std::set<int> s = {1, 2, 3};
  EXPECT_EQ(mem::BytesOf(s), 3 * (sizeof(int) + mem::kNodeOverhead));
  std::multiset<int> ms = {1, 1, 1, 2};
  EXPECT_EQ(mem::BytesOf(ms), 4 * (sizeof(int) + mem::kNodeOverhead));
}

TEST(MemoryAccountingTest, UnorderedContainersIncludeBuckets) {
  std::unordered_map<int, int> m;
  m[1] = 1;
  const std::size_t bytes = mem::BytesOf(m);
  EXPECT_GE(bytes, sizeof(std::pair<const int, int>) + mem::kNodeOverhead);
  EXPECT_EQ(bytes, (sizeof(std::pair<const int, int>) + mem::kNodeOverhead) +
                       m.bucket_count() * sizeof(void*));

  std::unordered_set<int> s = {1, 2};
  EXPECT_EQ(mem::BytesOf(s), 2 * (sizeof(int) + mem::kNodeOverhead) +
                                 s.bucket_count() * sizeof(void*));
}

}  // namespace
}  // namespace carp
