// ShardLockSet / CommitGuard: canonical-order acquisition, the
// try/retry/blocking protocol's telemetry, and mutual exclusion under
// real concurrency (DESIGN.md §2h).
#include "common/sharded_lock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace carp {
namespace {

TEST(ShardLockSetTest, UncontendedGuardCountsOneCommitNoRetries) {
  ShardLockSet set(8);
  {
    const std::vector<std::uint32_t> footprint{1, 3, 7};
    ShardLockSet::CommitGuard guard(set, footprint);
  }
  const auto s = set.stats();
  EXPECT_EQ(s.commits, 1);
  EXPECT_EQ(s.contentions, 0);
  EXPECT_EQ(s.retries, 0);
}

TEST(ShardLockSetTest, ZeroShardsClampsToOne) {
  ShardLockSet set(0);
  EXPECT_EQ(set.size(), 1u);
  const std::vector<std::uint32_t> footprint{0};
  ShardLockSet::CommitGuard guard(set, footprint);
  EXPECT_EQ(set.stats().commits, 1);
}

TEST(ShardLockSetTest, EmptyFootprintIsANoOpGuard) {
  ShardLockSet set(4);
  const std::vector<std::uint32_t> empty;
  ShardLockSet::CommitGuard guard(set, empty);
  // Nothing held: a disjoint guard on another thread's behalf still works.
  const std::vector<std::uint32_t> footprint{2};
  ShardLockSet::CommitGuard other(set, footprint);
  EXPECT_EQ(set.stats().commits, 2);
}

TEST(ShardLockSetTest, ResetStatsClearsCounters) {
  ShardLockSet set(2);
  {
    const std::vector<std::uint32_t> footprint{0, 1};
    ShardLockSet::CommitGuard guard(set, footprint);
  }
  set.ResetStats();
  const auto s = set.stats();
  EXPECT_EQ(s.commits, 0);
  EXPECT_EQ(s.contentions, 0);
  EXPECT_EQ(s.retries, 0);
}

TEST(ShardLockSetTest, ContendedGuardRecordsContentionAndRetries) {
  ShardLockSet set(4);
  const std::vector<std::uint32_t> footprint{2};

  std::mutex mu;
  std::condition_variable cv;
  bool holder_ready = false;
  bool release_holder = false;

  // Holder grabs shard 2 and parks until told to let go.
  std::thread holder([&] {
    ShardLockSet::CommitGuard guard(set, footprint);
    {
      std::unique_lock<std::mutex> lock(mu);
      holder_ready = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release_holder; });
    }
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return holder_ready; });
  }

  // Contender must go through the full try -> retry -> blocking protocol.
  std::atomic<bool> contender_acquired{false};
  std::thread contender([&] {
    ShardLockSet::CommitGuard guard(set, footprint);
    contender_acquired.store(true);
  });

  // Give the contender time to reach the blocking acquire, then release.
  while (set.stats().retries < 2) std::this_thread::yield();
  EXPECT_FALSE(contender_acquired.load());
  {
    std::lock_guard<std::mutex> lock(mu);
    release_holder = true;
    cv.notify_all();
  }
  holder.join();
  contender.join();

  EXPECT_TRUE(contender_acquired.load());
  const auto s = set.stats();
  EXPECT_EQ(s.commits, 2);
  EXPECT_EQ(s.contentions, 1);
  // One optimistic re-sweep plus the blocking fallback.
  EXPECT_EQ(s.retries, 2);
}

TEST(ShardLockSetTest, DisjointFootprintsHoldTheirShardsConcurrently) {
  ShardLockSet set(4);
  std::mutex mu;
  std::condition_variable cv;
  int holding = 0;
  bool release = false;

  // Two guards with disjoint footprints must be able to be held at the
  // same time; the barrier below deadlocks if they serialize.
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      const std::vector<std::uint32_t> footprint{
          static_cast<std::uint32_t>(2 * w),
          static_cast<std::uint32_t>(2 * w + 1)};
      ShardLockSet::CommitGuard guard(set, footprint);
      std::unique_lock<std::mutex> lock(mu);
      ++holding;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return holding == 2; });
    release = true;
    cv.notify_all();
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(set.stats().contentions, 0);
}

TEST(ShardLockSetTest, MutualExclusionUnderContendedIncrements) {
  ShardLockSet set(2);
  const std::vector<std::uint32_t> footprint{0, 1};
  std::int64_t unguarded = 0;  // data race iff the guard fails
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;

  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        ShardLockSet::CommitGuard guard(set, footprint);
        ++unguarded;
      }
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_EQ(unguarded, static_cast<std::int64_t>(kThreads) * kIters);
  const auto s = set.stats();
  EXPECT_EQ(s.commits, static_cast<std::int64_t>(kThreads) * kIters);
  EXPECT_GE(s.retries, s.contentions);
}

}  // namespace
}  // namespace carp
