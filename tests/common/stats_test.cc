#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace carp {
namespace {

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryStatsTest, SingleValue) {
  SummaryStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryStatsTest, KnownMoments) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Population variance is 4; sample variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStatsTest, MergeMatchesSequential) {
  SummaryStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    double v = std::sin(i) * 10;
    all.Add(v);
    (i < 40 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(SummaryStatsTest, MergeWithEmpty) {
  SummaryStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

TEST(PercentileTest, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  EXPECT_DOUBLE_EQ(Percentile({10.0, 20.0}, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0, 20.0, 30.0}, 0.25), 7.5);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v = {5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 9.0);
}

TEST(PercentileTest, ClampsOutOfRangeQuantiles) {
  std::vector<double> v = {2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, -1.0), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 2.0), 4.0);
}

}  // namespace
}  // namespace carp
