#include "common/table_writer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace carp {
namespace {

TEST(TableWriterTest, AlignsColumns) {
  TableWriter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(TableWriterTest, PadsShortRows) {
  TableWriter t({"a", "b", "c"});
  t.AddRow({"x"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("| x |   |   |"), std::string::npos);
}

TEST(TableWriterTest, CsvEscapesSpecialCharacters) {
  TableWriter t({"k", "v"});
  t.AddRow({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_NE(os.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(TableWriterTest, RowCount) {
  TableWriter t({"h"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 4), "3.1416");
  EXPECT_EQ(FormatDouble(-1.5, 0), "-2");  // round-to-even via printf
}

TEST(FormatBytesTest, UnitsScale) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(5 * 1024 * 1024), "5.00 MiB");
  EXPECT_EQ(FormatBytes(std::size_t{3} << 30), "3.00 GiB");
}

}  // namespace
}  // namespace carp
