#include "common/timer.h"

#include <gtest/gtest.h>

namespace carp {
namespace {

// Busy-waits long enough for a monotonic clock to advance.
void Spin() {
  volatile int sink = 0;
  for (int i = 0; i < 200000; ++i) sink = sink + i;
  (void)sink;
}

TEST(StopwatchTest, StartsAtZero) {
  Stopwatch w;
  EXPECT_EQ(w.elapsed_ns(), 0);
  EXPECT_DOUBLE_EQ(w.elapsed_seconds(), 0.0);
}

TEST(StopwatchTest, AccumulatesAcrossLaps) {
  Stopwatch w;
  w.Start();
  Spin();
  const std::int64_t lap1 = w.Stop();
  EXPECT_GT(lap1, 0);
  EXPECT_EQ(w.elapsed_ns(), lap1);

  w.Start();
  Spin();
  const std::int64_t lap2 = w.Stop();
  EXPECT_EQ(w.elapsed_ns(), lap1 + lap2);
}

TEST(StopwatchTest, StopWithoutStartIsNoop) {
  Stopwatch w;
  EXPECT_EQ(w.Stop(), 0);
  EXPECT_EQ(w.elapsed_ns(), 0);
}

TEST(StopwatchTest, DoubleStopCountsOnce) {
  Stopwatch w;
  w.Start();
  Spin();
  const std::int64_t lap = w.Stop();
  EXPECT_EQ(w.Stop(), 0);
  EXPECT_EQ(w.elapsed_ns(), lap);
}

TEST(StopwatchTest, ResetDiscardsTime) {
  Stopwatch w;
  w.Start();
  Spin();
  w.Stop();
  w.Reset();
  EXPECT_EQ(w.elapsed_ns(), 0);
}

TEST(StopwatchTest, SecondsMatchNanoseconds) {
  Stopwatch w;
  w.Start();
  Spin();
  w.Stop();
  EXPECT_DOUBLE_EQ(w.elapsed_seconds(),
                   static_cast<double>(w.elapsed_ns()) * 1e-9);
}

TEST(ScopedLapTest, AccumulatesScopeDuration) {
  Stopwatch w;
  {
    ScopedLap lap(w);
    Spin();
  }
  const std::int64_t first = w.elapsed_ns();
  EXPECT_GT(first, 0);
  {
    ScopedLap lap(w);
    Spin();
  }
  EXPECT_GT(w.elapsed_ns(), first);
}

}  // namespace
}  // namespace carp
