#include "common/logging.h"

#include <gtest/gtest.h>

namespace carp {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, FilteredMessageDoesNotEvaluate) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  CARP_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  CARP_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, EmittedMessageGoesToStderr) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  CARP_LOG(kWarning) << "hello warning";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("hello warning"), std::string::npos);
  EXPECT_NE(out.find("[W "), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesSilently) {
  testing::internal::CaptureStderr();
  CARP_CHECK(1 + 1 == 2) << "never shown";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

using LoggingDeathTest = LoggingTest;

TEST_F(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ CARP_CHECK(false) << "boom"; }, "CHECK failed: false");
}

}  // namespace
}  // namespace carp
