// Release-after-prune semantics, pinned per backend (core::Planner's
// lifecycle contract): PruneBefore(t) may drop the leading part of a
// committed route's collision state; a later ReleaseRoute must retire the
// surviving remainder without leaking state or double-counting, and a
// route PruneBefore dropped wholesale must count as pruned, not released.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "baselines/grid_planner_base.h"
#include "baselines/planner_factory.h"
#include "core/planner.h"
#include "core/route.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "srp/srp_planner.h"

namespace carp {
namespace {

class PruneReleaseTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    warehouse_ = layout::GenerateWarehouse(layout::PresetTiny());
    planner_ = baselines::MakePlanner(GetParam(), warehouse_.matrix);
    ASSERT_NE(planner_, nullptr);
  }

  /// Plans one route spanning at least two timesteps.
  core::Route PlanOne() {
    auto route = planner_->PlanRoute(0, warehouse_.rack_access.at(0),
                                     warehouse_.pickers.at(0));
    EXPECT_TRUE(route.has_value());
    EXPECT_LT(route->start_time(), route->end_time());
    return *route;
  }

  /// No collision state may survive once every route is retired.
  void ExpectNoLeakedState() {
    EXPECT_EQ(planner_->live_routes(), 0u);
    if (auto* srp = dynamic_cast<srp::SrpPlanner*>(planner_.get())) {
      EXPECT_EQ(srp->SegmentCount(), 0u);
      EXPECT_EQ(srp->CheckInvariants(), "");
    }
    if (auto* grid =
            dynamic_cast<baselines::GridPlannerBase*>(planner_.get())) {
      EXPECT_EQ(grid->reservations().EntryCount(), 0u);
      EXPECT_EQ(grid->reservations().CheckInvariants(), "");
    }
  }

  layout::Warehouse warehouse_;
  std::unique_ptr<core::Planner> planner_;
};

TEST_P(PruneReleaseTest, ReleaseAfterPartialPruneRetiresRemainder) {
  const core::Route route = PlanOne();
  ASSERT_EQ(planner_->live_routes(), 1u);

  // Cut strictly inside the route: the leading state vanishes, the route
  // itself stays committed (its end lies at or beyond the cutoff).
  const TimeStep mid = (route.start_time() + route.end_time()) / 2 + 1;
  ASSERT_LE(mid, route.end_time());
  EXPECT_EQ(planner_->PruneBefore(mid), 0u);
  EXPECT_EQ(planner_->live_routes(), 1u);
  EXPECT_EQ(planner_->stats().routes_pruned, 0);

  // Releasing now must retire the surviving remainder: the missing
  // leading segments / reservations are skipped, not an error, and the
  // route counts as released exactly once.
  EXPECT_TRUE(planner_->ReleaseRoute(route));
  EXPECT_EQ(planner_->stats().routes_released, 1);
  EXPECT_EQ(planner_->stats().routes_pruned, 0);
  EXPECT_FALSE(planner_->ReleaseRoute(route));
  EXPECT_EQ(planner_->stats().routes_released, 1);
  ExpectNoLeakedState();
}

TEST_P(PruneReleaseTest, ReleaseAfterFullPruneIsCountedAsPrunedNotReleased) {
  const core::Route route = PlanOne();

  // Prune past the route's end: the route is dropped wholesale.
  EXPECT_EQ(planner_->PruneBefore(route.end_time() + 1), 1u);
  EXPECT_EQ(planner_->stats().routes_pruned, 1);
  EXPECT_EQ(planner_->live_routes(), 0u);

  // A late release of the already-pruned route is a no-op miss — it must
  // not be double-counted as a release.
  EXPECT_FALSE(planner_->ReleaseRoute(route));
  EXPECT_EQ(planner_->stats().routes_released, 0);
  EXPECT_EQ(planner_->stats().routes_pruned, 1);
  ExpectNoLeakedState();
}

INSTANTIATE_TEST_SUITE_P(AllPlanners, PruneReleaseTest,
                         ::testing::Values("SAP", "RP", "TWP", "ACP", "SRP",
                                           "SRP-noindex"));

}  // namespace
}  // namespace carp
