// Route lifecycle end-to-end: a multi-day workload through the Simulator
// with retirement on must stay collision-free every day while the
// planner's retained state stays flat instead of accumulating the full
// history of finished routes.
#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "baselines/planner_factory.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "sim/simulator.h"
#include "srp/srp_planner.h"
#include "workload/task_generator.h"

namespace carp::sim {
namespace {

std::vector<workload::DeliveryTask> DayTasks(const layout::Warehouse& w,
                                             int day, TimeStep day_length,
                                             int count) {
  workload::TaskGeneratorOptions opts;
  opts.task_count = count;
  opts.day_length = day_length;
  opts.seed = 40 + day;
  auto tasks = workload::GenerateTasks(
      w, workload::ArrivalProfile::Uniform(), opts);
  for (auto& t : tasks) t.arrival += static_cast<TimeStep>(day) * day_length;
  return tasks;
}

class LongrunLifecycleTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LongrunLifecycleTest, ThreeDaysBoundedStateCollisionFree) {
  const TimeStep day_length = 400;
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  // A tight ACP path-cache budget (ignored by the other tags) so the
  // boundedness bound below covers ACP too: the budget forces LRU
  // eviction well within a day's worth of distinct OD pairs.
  baselines::PlannerBuildOptions build;
  build.acp_cache_budget_bytes = 8192;
  auto planner = baselines::MakePlanner(GetParam(), warehouse.matrix, build);
  ASSERT_NE(planner, nullptr);

  SimulatorOptions options;
  options.retire_routes = true;
  options.prune_every = 256;
  options.prune_slack = 32;
  Simulator sim(warehouse, *planner, options);

  std::vector<std::size_t> end_bytes;
  std::int64_t released = 0;
  for (int day = 0; day < 3; ++day) {
    RunMetrics m = sim.Run(DayTasks(warehouse, day, day_length, 30));
    EXPECT_EQ(m.finished_tasks, m.total_tasks) << "day " << day;
    EXPECT_TRUE(m.validated);
    EXPECT_TRUE(m.collision_free) << GetParam() << " day " << day;
    EXPECT_GT(m.routes_released, 0) << "day " << day;
    // Every stage route retires once its robot finishes executing it, so
    // nothing is live after the day drains.
    EXPECT_EQ(m.end_live_routes, 0u) << "day " << day;
    end_bytes.push_back(m.end_retained_bytes);
    released += m.routes_released;
  }
  // The acceptance bound: end-of-day-3 retained bytes within 2x
  // end-of-day-1 — flat, not linear in days. This now covers ACP too: its
  // OD-pair path cache is time-independent retained memory, which used to
  // accumulate without bound (the one exemption here) and is now held to
  // a byte budget by LRU eviction like every other retained structure.
  EXPECT_LE(end_bytes[2], 2 * end_bytes[0]) << GetParam();
  EXPECT_EQ(planner->stats().routes_released, released);

  // SRP's release path removes exactly the segments its commits inserted,
  // so a fully drained day leaves the stores empty.
  if (auto* srp = dynamic_cast<srp::SrpPlanner*>(planner.get())) {
    EXPECT_EQ(srp->SegmentCount(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPlanners, LongrunLifecycleTest,
                         ::testing::Values("SAP", "RP", "TWP", "ACP", "SRP",
                                           "SRP-noindex"));

// Retirement composed with speculative batched dispatch: losers of the
// optimistic commit-then-validate pass release through the same path the
// retirement uses, and the day must still validate.
TEST(LongrunLifecycleBatchedTest, RetirementWithSpeculativeDispatch) {
  const TimeStep day_length = 400;
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  auto planner = baselines::MakePlanner("SRP", warehouse.matrix);
  ASSERT_NE(planner, nullptr);

  SimulatorOptions options;
  options.retire_routes = true;
  options.prune_every = 256;
  options.prune_slack = 32;
  options.threads = 2;
  Simulator sim(warehouse, *planner, options);

  for (int day = 0; day < 2; ++day) {
    RunMetrics m = sim.Run(DayTasks(warehouse, day, day_length, 30));
    EXPECT_EQ(m.finished_tasks, m.total_tasks) << "day " << day;
    EXPECT_TRUE(m.collision_free) << "day " << day;
    EXPECT_EQ(m.end_live_routes, 0u) << "day " << day;
  }
}

}  // namespace
}  // namespace carp::sim
