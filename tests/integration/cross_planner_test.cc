// Integration tests: run the full query pipeline across all five planners
// on identical workloads and check the comparative properties the paper
// relies on (everyone collision-free; SRP effectiveness comparable; SRP
// memory far below the grid-based baselines).

#include <map>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "baselines/planner_factory.h"
#include "core/collision.h"
#include "core/spatial_paths.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "srp/srp_planner.h"
#include "workload/request_stream.h"
#include "workload/task_generator.h"

namespace carp {
namespace {

struct PlannerOutcome {
  std::int64_t planned = 0;
  std::int64_t failed = 0;
  TimeStep makespan = 0;
  std::size_t retained_bytes = 0;
};

std::map<std::string, PlannerOutcome> RunAll(
    const layout::Warehouse& warehouse,
    const std::vector<workload::PlanningQuery>& queries) {
  std::map<std::string, PlannerOutcome> outcomes;
  for (const std::string& name : baselines::PaperAlgorithms()) {
    auto planner = baselines::MakePlanner(name, warehouse.matrix);
    const std::size_t static_bytes = planner->RetainedBytes();
    PlannerOutcome out;
    for (const auto& q : queries) {
      auto route = planner->PlanRoute(q.emergence, q.origin, q.destination);
      if (route.has_value()) {
        ++out.planned;
        out.makespan = std::max(out.makespan, route->finish_term());
      } else {
        ++out.failed;
      }
    }
    EXPECT_TRUE(core::RouteSetValidator::IsCollisionFree(
        planner->committed_routes()))
        << name;
    // Growth over the run: excludes per-planner static state (for SRP the
    // one-off strip graph), isolating the per-route bookkeeping plus peak
    // search space that the paper's MC comparison is about.
    out.retained_bytes = planner->RetainedBytes() - static_bytes;
    outcomes[name] = out;
  }
  return outcomes;
}

class CrossPlannerTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossPlannerTest, AllPlannersSafeAndComparable) {
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  workload::TaskGeneratorOptions topts;
  topts.task_count = 40;
  topts.day_length = 400;
  topts.seed = static_cast<std::uint64_t>(GetParam());
  const auto tasks = workload::GenerateTasks(
      warehouse, workload::ArrivalProfile::DoubleSurge(), topts);
  const auto queries = workload::FlattenToQueries(warehouse, tasks);

  auto outcomes = RunAll(warehouse, queries);
  ASSERT_EQ(outcomes.size(), 5u);

  const PlannerOutcome& srp = outcomes.at("SRP");
  const PlannerOutcome& sap = outcomes.at("SAP");

  // Everyone plans essentially everything.
  for (const auto& [name, out] : outcomes) {
    EXPECT_GE(out.planned, static_cast<std::int64_t>(queries.size()) - 4)
        << name;
  }

  // Effectiveness: SRP's makespan within 50% of SAP's (the paper's
  // Table III shows low-single-digit differences at full scale).
  EXPECT_LT(srp.makespan, sap.makespan * 3 / 2);

  // Memory: SRP's per-workload growth stays below every grid-based
  // baseline's. (The paper reports 97-99% savings at warehouse scale,
  // where routes span hundreds of cells; on this tiny map routes are only
  // ~20 cells long, so the gap is necessarily narrower — the bench
  // harness reports the at-scale ratios.)
  for (const char* name : {"SAP", "RP", "TWP", "ACP"}) {
    EXPECT_LT(srp.retained_bytes, outcomes.at(name).retained_bytes) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossPlannerTest, ::testing::Values(1, 2, 3));

TEST(SrpMemoryScalingTest, SegmentStateBeatsReservationsAtScale) {
  // As query volume grows, SRP's marginal memory per route (a few segment
  // endpoints) stays far below the baselines' per-cell reservations.
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetSmall());
  workload::TaskGeneratorOptions topts;
  topts.task_count = 150;
  topts.day_length = 1000;
  topts.seed = 12;
  const auto tasks = workload::GenerateTasks(
      warehouse, workload::ArrivalProfile::Uniform(), topts);
  const auto queries = workload::FlattenToQueries(warehouse, tasks);

  srp::SrpPlanner srp_planner(warehouse.matrix);
  auto sap_planner = baselines::MakePlanner("SAP", warehouse.matrix);

  const std::size_t srp_static = srp_planner.RetainedBytes();
  for (const auto& q : queries) {
    srp_planner.PlanRoute(q.emergence, q.origin, q.destination);
    sap_planner->PlanRoute(q.emergence, q.origin, q.destination);
  }
  const std::size_t srp_dynamic =
      srp_planner.RetainedBytes() - srp_static;
  // Marginal (per-workload) state: the paper reports 97-99% reduction at
  // warehouse scale; on this mid-size map demand at least a 50% cut.
  EXPECT_LT(srp_dynamic, sap_planner->RetainedBytes() / 2);
}

TEST(SrpOptimalityTest, UncongestedRoutesMatchSpatialOptimum) {
  // With a single robot at a time (no congestion), SRP's inter+intra
  // decomposition must still find Manhattan-obstacle-optimal routes; we
  // compare against collision-oblivious shortest paths.
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  core::SpatialPathFinder finder(warehouse.matrix);
  workload::TaskGeneratorOptions topts;
  topts.task_count = 60;
  topts.day_length = 100000;  // so spread out that routes never interact
  topts.seed = 9;
  const auto tasks = workload::GenerateTasks(
      warehouse, workload::ArrivalProfile::Uniform(), topts);
  const auto queries = workload::PickupQueries(warehouse, tasks);

  srp::SrpPlanner planner(warehouse.matrix);
  int exact = 0;
  for (const auto& q : queries) {
    auto route = planner.PlanRoute(q.emergence, q.origin, q.destination);
    ASSERT_TRUE(route.has_value());
    auto shortest = finder.ShortestPath(q.origin, q.destination);
    ASSERT_TRUE(shortest.has_value());
    const auto optimal = static_cast<std::int64_t>(shortest->size());
    // Greedy inter-strip transit may cost a couple of grids in corner
    // cases (Sec. VII-A); uncongested routes must stay near-optimal.
    EXPECT_LE(route->length(), optimal + 4) << q;
    if (route->length() == optimal) ++exact;
  }
  EXPECT_GE(exact, static_cast<int>(queries.size() * 8) / 10);
}

}  // namespace
}  // namespace carp
