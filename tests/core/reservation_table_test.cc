#include "core/reservation_table.h"

#include <gtest/gtest.h>

namespace carp::core {
namespace {

TEST(ReservationTableTest, ReserveAndQuery) {
  ReservationTable table;
  Route r(5, {{0, 0}, {0, 1}, {0, 2}});
  table.Reserve(7, r);
  EXPECT_EQ(table.EntryCount(), 3u);
  EXPECT_EQ(table.OccupantAt({0, 0}, 5), std::optional<RouteId>(7));
  EXPECT_EQ(table.OccupantAt({0, 1}, 6), std::optional<RouteId>(7));
  EXPECT_FALSE(table.OccupantAt({0, 1}, 5).has_value());
  EXPECT_TRUE(table.IsFree({0, 0}, 6));
  EXPECT_FALSE(table.IsFree({0, 2}, 7));
}

TEST(ReservationTableTest, ReleaseRemovesOnlyOwnEntries) {
  ReservationTable table;
  Route r1(0, {{0, 0}, {0, 1}});
  Route r2(0, {{1, 0}, {1, 1}});
  table.Reserve(1, r1);
  table.Reserve(2, r2);
  table.Release(1, r1);
  EXPECT_TRUE(table.IsFree({0, 0}, 0));
  EXPECT_FALSE(table.IsFree({1, 0}, 0));
  EXPECT_EQ(table.EntryCount(), 2u);
}

TEST(ReservationTableTest, VertexConflictBlocksMove) {
  ReservationTable table;
  table.Reserve(1, Route(0, {{0, 5}, {0, 5}}));  // occupies (0,5) t=0,1
  EXPECT_FALSE(table.IsMoveAllowed({0, 4}, {0, 5}, 0));
  EXPECT_TRUE(table.IsMoveAllowed({0, 4}, {0, 5}, 1));  // lands at t=2
}

TEST(ReservationTableTest, SwapConflictBlocksMove) {
  ReservationTable table;
  // Route moves (0,1) -> (0,0) over t=0..1.
  table.Reserve(1, Route(0, {{0, 1}, {0, 0}}));
  // Moving (0,0) -> (0,1) at t=0 would swap.
  EXPECT_FALSE(table.IsMoveAllowed({0, 0}, {0, 1}, 0));
}

TEST(ReservationTableTest, FollowingMoveAllowed) {
  ReservationTable table;
  table.Reserve(1, Route(0, {{0, 1}, {0, 2}}));
  // Stepping into the vacated cell: (0,0)->(0,1) lands at t=1 where the
  // occupant has left.
  EXPECT_TRUE(table.IsMoveAllowed({0, 0}, {0, 1}, 0));
}

TEST(ReservationTableTest, WaitConflictsOnlyWithOccupancy) {
  ReservationTable table;
  table.Reserve(1, Route(2, {{3, 3}}));
  EXPECT_FALSE(table.IsMoveAllowed({3, 3}, {3, 3}, 1));  // lands t=2
  EXPECT_TRUE(table.IsMoveAllowed({3, 3}, {3, 3}, 2));   // lands t=3
}

TEST(ReservationTableTest, PruneBeforeDropsOnlyPastEntries) {
  ReservationTable table;
  Route past(0, {{0, 0}, {0, 1}, {0, 2}});    // occupies t=0..2
  Route future(10, {{5, 5}, {5, 6}});         // occupies t=10..11
  table.Reserve(1, past);
  table.Reserve(2, future);
  EXPECT_EQ(table.PruneBefore(5), 3u);
  EXPECT_EQ(table.EntryCount(), 2u);
  EXPECT_TRUE(table.IsFree({0, 0}, 0));
  EXPECT_FALSE(table.IsFree({5, 5}, 10));
  // The horizon bound stays a safe upper bound for the survivors.
  EXPECT_GE(table.MaxReservedTime(0), 11);
  // Releasing the pruned route is a silent no-op; the freed cells can be
  // reserved again by a new route.
  table.Release(1, past);
  EXPECT_EQ(table.EntryCount(), 2u);
  table.Reserve(3, Route(0, {{0, 0}, {0, 1}}));
  EXPECT_EQ(table.OccupantAt({0, 0}, 0), std::optional<RouteId>(3));
}

TEST(ReservationTableTest, PruneBeforeMidRouteKeepsRemainder) {
  ReservationTable table;
  Route r(0, {{0, 0}, {0, 1}, {0, 2}, {0, 3}});  // occupies t=0..3
  table.Reserve(1, r);
  EXPECT_EQ(table.PruneBefore(2), 2u);
  EXPECT_TRUE(table.IsFree({0, 0}, 0));
  EXPECT_EQ(table.OccupantAt({0, 2}, 2), std::optional<RouteId>(1));
  EXPECT_EQ(table.OccupantAt({0, 3}, 3), std::optional<RouteId>(1));
  // Releasing the half-pruned route removes exactly the surviving tail.
  table.Release(1, r);
  EXPECT_EQ(table.EntryCount(), 0u);
}

TEST(ReservationTableTest, MaxReservedTimeTracksRoutes) {
  ReservationTable table;
  EXPECT_EQ(table.MaxReservedTime(99), 99);
  table.Reserve(1, Route(10, {{0, 0}, {0, 1}}));
  EXPECT_EQ(table.MaxReservedTime(0), 11);
}

TEST(ReservationTableTest, ClearEmptiesEverything) {
  ReservationTable table;
  table.Reserve(1, Route(0, {{0, 0}}));
  table.Clear();
  EXPECT_EQ(table.EntryCount(), 0u);
  EXPECT_TRUE(table.IsFree({0, 0}, 0));
}

TEST(ReservationTableTest, RetainedBytesGrowsWithEntries) {
  ReservationTable table;
  const std::size_t empty = table.RetainedBytes();
  std::vector<GridCoord> cells;
  for (std::int32_t i = 0; i < 100; ++i) cells.push_back({0, i});
  table.Reserve(1, Route(0, cells));
  EXPECT_GT(table.RetainedBytes(), empty);
}

TEST(ReservationTableTest, ReleaseErasesEmptiedBuckets) {
  // The safe-interval sweep (ForEachReservedInWindow) visits every bucket
  // in its window, so a bucket emptied by Release must be erased, not left
  // behind — pinned by the buckets_erased counter.
  ReservationTable table;
  const Route a(0, {{0, 0}, {0, 1}, {0, 2}});  // t = 0, 1, 2
  const Route b(1, {{5, 5}, {5, 6}});          // t = 1, 2 (shared buckets)
  table.Reserve(1, a);
  table.Reserve(2, b);
  EXPECT_EQ(table.buckets_erased(), 0);
  // Releasing `a` empties only the t=0 bucket; t=1 and t=2 still hold `b`.
  table.Release(1, a);
  EXPECT_EQ(table.buckets_erased(), 1);
  table.Release(2, b);
  EXPECT_EQ(table.buckets_erased(), 3);
  int swept = 0;
  table.ForEachReservedInWindow(0, 10,
                                [&](GridCoord, TimeStep, RouteId) {
                                  ++swept;
                                });
  EXPECT_EQ(swept, 0);
}

TEST(ReservationTableTest, PruneBeforeCountsDroppedBuckets) {
  ReservationTable table;
  std::vector<GridCoord> cells;
  for (std::int32_t i = 0; i < 6; ++i) cells.push_back({0, i});
  table.Reserve(1, Route(0, cells));  // buckets t = 0..5
  EXPECT_EQ(table.PruneBefore(4), 4u);
  EXPECT_EQ(table.buckets_erased(), 4);
  // Clear starts the counter over with the rest of the state.
  table.Clear();
  EXPECT_EQ(table.buckets_erased(), 0);
}

using ReservationTableDeathTest = ::testing::Test;

TEST(ReservationTableDeathTest, DoubleReserveDies) {
  ReservationTable table;
  table.Reserve(1, Route(0, {{0, 0}}));
  EXPECT_DEATH(table.Reserve(2, Route(0, {{0, 0}})), "reserving over route");
}

}  // namespace
}  // namespace carp::core
