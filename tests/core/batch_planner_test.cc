#include "core/batch_planner.h"

#include <gtest/gtest.h>

#include "baselines/planner_factory.h"
#include "core/collision.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"

namespace carp::core {
namespace {

class BatchPlannerTest : public ::testing::Test {
 protected:
  layout::Warehouse warehouse_ =
      layout::GenerateWarehouse(layout::PresetTiny());
};

std::vector<BatchQuery> CrossingBatch() {
  // Four robots crossing the open margin rows simultaneously.
  return {
      {{0, 0}, {0, 12}},
      {{0, 12}, {0, 0}},
      {{1, 3}, {1, 9}},
      {{1, 9}, {1, 3}},
  };
}

TEST_F(BatchPlannerTest, PlansWholeSetCollisionFree) {
  auto planner = baselines::MakePlanner("SRP", warehouse_.matrix);
  const auto result = PlanBatch(*planner, 0, CrossingBatch());
  EXPECT_EQ(result.planned, 4);
  EXPECT_EQ(result.failed, 0);
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner->committed_routes()));
}

TEST_F(BatchPlannerTest, RoutesStayInOriginalOrder) {
  auto planner = baselines::MakePlanner("SAP", warehouse_.matrix);
  const auto queries = CrossingBatch();
  const auto result =
      PlanBatch(*planner, 0, queries, BatchOrder::kLongestFirst);
  ASSERT_EQ(result.routes.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(result.routes[i].has_value());
    EXPECT_EQ(result.routes[i]->origin(), queries[i].origin);
    EXPECT_EQ(result.routes[i]->destination(), queries[i].destination);
  }
}

TEST_F(BatchPlannerTest, ShortestFirstGivesShortQueriesDirectRoutes) {
  auto planner = baselines::MakePlanner("SAP", warehouse_.matrix);
  std::vector<BatchQuery> queries = {
      {{0, 0}, {0, 12}},  // long
      {{0, 5}, {0, 7}},   // short, inside the long one's corridor
  };
  const auto result =
      PlanBatch(*planner, 0, queries, BatchOrder::kShortestFirst);
  ASSERT_TRUE(result.routes[1].has_value());
  // Planned first, so no detours or waits for the short query.
  EXPECT_EQ(result.routes[1]->length(), 3);
}

TEST_F(BatchPlannerTest, MakespanIsMaxFinishTerm) {
  auto planner = baselines::MakePlanner("SRP", warehouse_.matrix);
  const auto result = PlanBatch(*planner, 10, CrossingBatch());
  TimeStep expected = 0;
  for (const auto& r : result.routes) {
    ASSERT_TRUE(r.has_value());
    expected = std::max(expected, r->finish_term());
  }
  EXPECT_EQ(result.makespan, expected);
}

TEST_F(BatchPlannerTest, EmptyBatchTrivially) {
  auto planner = baselines::MakePlanner("SRP", warehouse_.matrix);
  const auto result = PlanBatch(*planner, 0, {});
  EXPECT_EQ(result.planned, 0);
  EXPECT_EQ(result.failed, 0);
  EXPECT_TRUE(result.routes.empty());
}

TEST_F(BatchPlannerTest, UnroutableQueryCountsAsFailed) {
  auto planner = baselines::MakePlanner("SRP", warehouse_.matrix);
  ASSERT_FALSE(warehouse_.racks.empty());
  std::vector<BatchQuery> queries = {
      {{0, 0}, warehouse_.racks[0]},  // rack endpoint: unroutable
      {{0, 0}, {0, 5}},
  };
  const auto result = PlanBatch(*planner, 0, queries);
  EXPECT_EQ(result.failed, 1);
  EXPECT_EQ(result.planned, 1);
  EXPECT_FALSE(result.routes[0].has_value());
  EXPECT_TRUE(result.routes[1].has_value());
}

class BatchOrderTest : public ::testing::TestWithParam<BatchOrder> {};

TEST_P(BatchOrderTest, AllOrdersProduceSafeSets) {
  layout::Warehouse warehouse =
      layout::GenerateWarehouse(layout::PresetTiny());
  auto planner = baselines::MakePlanner("SRP", warehouse.matrix);
  std::vector<BatchQuery> queries;
  for (int k = 0; k < 10; ++k) {
    queries.push_back(BatchQuery{{0, k}, {39, 29 - k % 10}});
  }
  const auto result = PlanBatch(*planner, 0, queries, GetParam());
  EXPECT_EQ(result.failed, 0) << ToString(GetParam());
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree(planner->committed_routes()));
}

INSTANTIATE_TEST_SUITE_P(Orders, BatchOrderTest,
                         ::testing::Values(BatchOrder::kAsGiven,
                                           BatchOrder::kShortestFirst,
                                           BatchOrder::kLongestFirst));

}  // namespace
}  // namespace carp::core
