#include "core/safe_intervals.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/collision.h"
#include "core/reservation_table.h"
#include "core/route.h"
#include "core/sipp_astar.h"
#include "core/spacetime_astar.h"

namespace carp::core {
namespace {

// A route that parks on `cell` over [from, to] inclusive.
Route Dwell(GridCoord cell, TimeStep from, TimeStep to) {
  return Route(from, std::vector<GridCoord>(
                         static_cast<std::size_t>(to - from) + 1, cell));
}

std::vector<FreeInterval> IntervalsOf(SafeIntervalMap& map, GridCoord cell) {
  const auto run = map.Intervals(cell);
  std::vector<FreeInterval> out;
  for (std::uint32_t i = 0; i < run.count; ++i) {
    out.push_back(map.At(run.begin + i));
  }
  return out;
}

TEST(SafeIntervalMapTest, EmptyStoreYieldsSingleOpenInterval) {
  ReservationTable table;
  SafeIntervalMap map;
  map.Build(table, 5, 400);
  const auto intervals = IntervalsOf(map, {3, 4});
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0], (FreeInterval{5, kInfiniteTime}));
  // An untouched empty cell costs no sweep entries and one arena slot.
  EXPECT_EQ(map.swept_entries(), 0u);
  EXPECT_EQ(map.intervals_built(), 1);
}

TEST(SafeIntervalMapTest, GapsBetweenReservationsBecomeIntervals) {
  ReservationTable table;
  table.Reserve(1, Dwell({2, 2}, 10, 12));
  table.Reserve(2, Dwell({2, 2}, 20, 20));
  SafeIntervalMap map;
  map.Build(table, 0, 400);
  const auto intervals = IntervalsOf(map, {2, 2});
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[0], (FreeInterval{0, 9}));
  EXPECT_EQ(intervals[1], (FreeInterval{13, 19}));
  EXPECT_EQ(intervals[2], (FreeInterval{21, kInfiniteTime}));
}

TEST(SafeIntervalMapTest, BackToBackReservationsLeaveNoGap) {
  // Two robots occupy the cell over [4, 6] and [7, 9]: the zero-length gap
  // between them must not surface as a (degenerate) free interval.
  ReservationTable table;
  table.Reserve(1, Dwell({1, 1}, 4, 6));
  table.Reserve(2, Dwell({1, 1}, 7, 9));
  SafeIntervalMap map;
  map.Build(table, 0, 400);
  const auto intervals = IntervalsOf(map, {1, 1});
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (FreeInterval{0, 3}));
  EXPECT_EQ(intervals[1], (FreeInterval{10, kInfiniteTime}));
}

TEST(SafeIntervalMapTest, OccupiedAtStartDropsTheLeadingInterval) {
  ReservationTable table;
  table.Reserve(1, Dwell({0, 0}, 0, 2));
  SafeIntervalMap map;
  map.Build(table, 0, 400);
  const auto intervals = IntervalsOf(map, {0, 0});
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0], (FreeInterval{3, kInfiniteTime}));
}

TEST(SafeIntervalMapTest, ClipBoundaryTreatsLaterReservationsAsFree) {
  // The reservation sits entirely at times >= clip: outside the search
  // window (horizon / TWP awareness), so the cell derives as wide open.
  ReservationTable table;
  table.Reserve(1, Dwell({5, 5}, 50, 60));
  SafeIntervalMap map;
  map.Build(table, 0, 50);
  const auto intervals = IntervalsOf(map, {5, 5});
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0], (FreeInterval{0, kInfiniteTime}));

  // One step of the dwell inside the window splits the cell after all.
  SafeIntervalMap clipped;
  clipped.Build(table, 0, 51);
  const auto partial = IntervalsOf(clipped, {5, 5});
  ASSERT_EQ(partial.size(), 2u);
  EXPECT_EQ(partial[0], (FreeInterval{0, 49}));
  EXPECT_EQ(partial[1], (FreeInterval{51, kInfiniteTime}));
}

TEST(SafeIntervalMapTest, PrunedPrefixIsFreeAgain) {
  ReservationTable table;
  table.Reserve(1, Dwell({4, 4}, 0, 40));
  table.PruneBefore(20);
  SafeIntervalMap map;
  map.Build(table, 0, 400);
  const auto intervals = IntervalsOf(map, {4, 4});
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (FreeInterval{0, 19}));
  EXPECT_EQ(intervals[1], (FreeInterval{41, kInfiniteTime}));
}

TEST(SafeIntervalMapTest, ReleasedReservationLeavesNoTrace) {
  // Tombstoned (released) segments must not constrain the extraction, and
  // the emptied buckets must not cost the sweep anything.
  ReservationTable table;
  const Route dwell = Dwell({6, 3}, 8, 14);
  table.Reserve(7, dwell);
  table.Release(7, dwell);
  SafeIntervalMap map;
  map.Build(table, 0, 400);
  const auto intervals = IntervalsOf(map, {6, 3});
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0], (FreeInterval{0, kInfiniteTime}));
  EXPECT_EQ(map.swept_entries(), 0u);
  EXPECT_EQ(table.buckets_erased(), 7);
}

TEST(SafeIntervalMapTest, FindContainingRejectsReservedTimes) {
  ReservationTable table;
  table.Reserve(1, Dwell({2, 7}, 5, 6));
  SafeIntervalMap map;
  map.Build(table, 0, 400);
  EXPECT_EQ(map.FindContaining({2, 7}, 5), -1);
  EXPECT_EQ(map.FindContaining({2, 7}, 6), -1);
  const std::int32_t before = map.FindContaining({2, 7}, 4);
  const std::int32_t after = map.FindContaining({2, 7}, 7);
  ASSERT_GE(before, 0);
  ASSERT_GE(after, 0);
  EXPECT_NE(before, after);
  EXPECT_EQ(map.At(static_cast<std::uint32_t>(before)),
            (FreeInterval{0, 4}));
  EXPECT_EQ(map.At(static_cast<std::uint32_t>(after)),
            (FreeInterval{7, kInfiniteTime}));
}

TEST(SafeIntervalMapTest, OverwideFaultWidensUpperBoundsOnly) {
  ReservationTable table;
  table.Reserve(1, Dwell({3, 3}, 10, 12));
  SafeIntervalMap::SetOverwideFaultForTest(true);
  SafeIntervalMap map;
  map.Build(table, 0, 400);
  const auto intervals = IntervalsOf(map, {3, 3});
  SafeIntervalMap::SetOverwideFaultForTest(false);
  ASSERT_EQ(intervals.size(), 2u);
  // The fault pushes each bounded hi one step into the occupied slot; lo
  // bounds and the open-ended tail are untouched.
  EXPECT_EQ(intervals[0], (FreeInterval{0, 10}));
  EXPECT_EQ(intervals[1], (FreeInterval{13, kInfiniteTime}));
}

TEST(SafeIntervalMapTest, RebuildResetsDerivedState) {
  ReservationTable table;
  table.Reserve(1, Dwell({1, 2}, 3, 5));
  SafeIntervalMap map;
  map.Build(table, 0, 400);
  ASSERT_EQ(IntervalsOf(map, {1, 2}).size(), 2u);
  table.Release(1, Dwell({1, 2}, 3, 5));
  map.Build(table, 0, 400);
  EXPECT_EQ(map.intervals_built(), 0);
  const auto intervals = IntervalsOf(map, {1, 2});
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0], (FreeInterval{0, kInfiniteTime}));
}

TEST(SafeIntervalMapTest, SippMatchesAstarCostWithFewerExpansionsOnDwell) {
  // The engine contract in miniature (DESIGN.md §2k): a robot dwelling on
  // the destination forces a long wait. Both engines must price the query
  // identically; the interval engine must do it in fewer expansions (the
  // wait chain collapses into one interval hop) and collision-free.
  WarehouseMatrix matrix(8, 8);
  ReservationTable table;
  const Route blocker = Dwell({7, 7}, 0, 60);
  table.Reserve(1, blocker);

  SpaceTimeAStarOptions options;
  SpaceTimeAStar astar(matrix);
  SippAStar sipp(matrix);
  const auto expanded_route = astar.Plan(table, 0, {0, 0}, {7, 7}, options);
  const auto interval_route = sipp.Plan(table, 0, {0, 0}, {7, 7}, options);
  ASSERT_TRUE(expanded_route.has_value());
  ASSERT_TRUE(interval_route.has_value());
  EXPECT_EQ(expanded_route->end_time(), interval_route->end_time());
  EXPECT_EQ(interval_route->end_time(), 61);
  EXPECT_TRUE(
      RouteSetValidator::IsCollisionFree({blocker, *interval_route}));
  EXPECT_LT(sipp.last_stats().expanded, astar.last_stats().expanded);
  EXPECT_GT(sipp.last_stats().intervals_built, 0);
  EXPECT_GT(sipp.last_stats().interval_expansions, 0);
}

}  // namespace
}  // namespace carp::core
