#include "core/route.h"

#include <gtest/gtest.h>

#include "core/warehouse.h"

namespace carp::core {
namespace {

Route MakeRoute() {
  // Moves east twice, waits once, moves south.
  return Route(10, {{0, 0}, {0, 1}, {0, 2}, {0, 2}, {1, 2}});
}

TEST(RouteTest, BasicAccessors) {
  Route r = MakeRoute();
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.start_time(), 10);
  EXPECT_EQ(r.length(), 5);
  EXPECT_EQ(r.end_time(), 14);
  EXPECT_EQ(r.finish_term(), 15);  // st_r + |G_r| of Eq. (1)
  EXPECT_EQ(r.origin(), (GridCoord{0, 0}));
  EXPECT_EQ(r.destination(), (GridCoord{1, 2}));
}

TEST(RouteTest, AtIndexesByTime) {
  Route r = MakeRoute();
  EXPECT_EQ(r.At(10), (GridCoord{0, 0}));
  EXPECT_EQ(r.At(12), (GridCoord{0, 2}));
  EXPECT_EQ(r.At(13), (GridCoord{0, 2}));  // waiting
  EXPECT_EQ(r.At(14), (GridCoord{1, 2}));
}

TEST(RouteTest, MoveAndWaitCounts) {
  Route r = MakeRoute();
  EXPECT_EQ(r.MoveCount(), 3);
  EXPECT_EQ(r.WaitCount(), 1);
  Route single(0, {{2, 2}});
  EXPECT_EQ(single.MoveCount(), 0);
  EXPECT_EQ(single.WaitCount(), 0);
}

TEST(RouteTest, KinematicValidityOnOpenGrid) {
  WarehouseMatrix m(3, 4);
  EXPECT_TRUE(MakeRoute().IsKinematicallyValid(m));
}

TEST(RouteTest, InvalidWhenCrossingRack) {
  WarehouseMatrix m(3, 4);
  m.SetRack({0, 1}, true);
  EXPECT_FALSE(MakeRoute().IsKinematicallyValid(m));
}

TEST(RouteTest, EndpointRackAllowedOnlyWithFlag) {
  WarehouseMatrix m(3, 4);
  m.SetRack({1, 2}, true);  // the destination of MakeRoute
  EXPECT_FALSE(MakeRoute().IsKinematicallyValid(m, false));
  EXPECT_TRUE(MakeRoute().IsKinematicallyValid(m, true));
}

TEST(RouteTest, InvalidWhenTeleporting) {
  WarehouseMatrix m(5, 5);
  Route r(0, {{0, 0}, {0, 2}});  // two-cell jump
  EXPECT_FALSE(r.IsKinematicallyValid(m));
}

TEST(RouteTest, InvalidWhenOutOfBounds) {
  WarehouseMatrix m(2, 2);
  Route r(0, {{0, 0}, {0, 1}, {0, 2}});
  EXPECT_FALSE(r.IsKinematicallyValid(m));
}

TEST(RouteTest, EmptyRouteIsInvalid) {
  WarehouseMatrix m(2, 2);
  EXPECT_FALSE(Route().IsKinematicallyValid(m));
}

TEST(RouteTest, RoutesRetainedBytesCountsCells) {
  std::vector<Route> routes;
  EXPECT_EQ(RoutesRetainedBytes(routes), 0u);
  routes.push_back(MakeRoute());
  const std::size_t bytes = RoutesRetainedBytes(routes);
  EXPECT_GE(bytes, 5 * sizeof(GridCoord));
}

using RouteDeathTest = ::testing::Test;

TEST(RouteDeathTest, AtOutsideSpanDies) {
  Route r = MakeRoute();
  EXPECT_DEATH(r.At(9), "outside route span");
  EXPECT_DEATH(r.At(15), "outside route span");
}

}  // namespace
}  // namespace carp::core
