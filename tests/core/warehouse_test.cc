#include "core/warehouse.h"

#include <gtest/gtest.h>

namespace carp::core {
namespace {

TEST(WarehouseMatrixTest, StartsAllAisle) {
  WarehouseMatrix m(4, 6);
  EXPECT_EQ(m.height(), 4);
  EXPECT_EQ(m.width(), 6);
  EXPECT_EQ(m.CellCount(), 24);
  EXPECT_EQ(m.RackCount(), 0);
  for (std::int32_t i = 0; i < 4; ++i) {
    for (std::int32_t j = 0; j < 6; ++j) {
      EXPECT_TRUE(m.IsTraversable({i, j}));
    }
  }
}

TEST(WarehouseMatrixTest, SetAndQueryRacks) {
  WarehouseMatrix m(3, 3);
  m.SetRack({1, 1}, true);
  EXPECT_TRUE(m.IsRack({1, 1}));
  EXPECT_FALSE(m.IsTraversable({1, 1}));
  EXPECT_EQ(m.RackCount(), 1);
  m.SetRack({1, 1}, false);
  EXPECT_EQ(m.RackCount(), 0);
}

TEST(WarehouseMatrixTest, BoundsChecking) {
  WarehouseMatrix m(3, 3);
  EXPECT_TRUE(m.InBounds({0, 0}));
  EXPECT_TRUE(m.InBounds({2, 2}));
  EXPECT_FALSE(m.InBounds({-1, 0}));
  EXPECT_FALSE(m.InBounds({0, 3}));
  EXPECT_FALSE(m.IsTraversable({3, 0}));
}

TEST(WarehouseMatrixTest, NeighborsRespectBounds) {
  WarehouseMatrix m(3, 3);
  GridCoord out[4];
  EXPECT_EQ(m.Neighbors({0, 0}, out), 2);  // corner
  EXPECT_EQ(m.Neighbors({0, 1}, out), 3);  // edge
  EXPECT_EQ(m.Neighbors({1, 1}, out), 4);  // interior
}

TEST(WarehouseMatrixTest, IndexCoordRoundTrip) {
  WarehouseMatrix m(5, 7);
  for (std::int32_t i = 0; i < 5; ++i) {
    for (std::int32_t j = 0; j < 7; ++j) {
      EXPECT_EQ(m.CoordOf(m.Index({i, j})), (GridCoord{i, j}));
    }
  }
}

TEST(WarehouseMatrixTest, AsciiRoundTrip) {
  const std::string map =
      "....\n"
      ".##.\n"
      "....\n";
  WarehouseMatrix m = WarehouseMatrix::FromAscii(map);
  EXPECT_EQ(m.height(), 3);
  EXPECT_EQ(m.width(), 4);
  EXPECT_TRUE(m.IsRack({1, 1}));
  EXPECT_TRUE(m.IsRack({1, 2}));
  EXPECT_EQ(m.RackCount(), 2);
  EXPECT_EQ(m.ToAscii(), map);
}

TEST(WarehouseMatrixTest, FromAsciiHandlesCrlf) {
  WarehouseMatrix m = WarehouseMatrix::FromAscii("..\r\n#.\r\n");
  EXPECT_EQ(m.height(), 2);
  EXPECT_TRUE(m.IsRack({1, 0}));
}

using WarehouseMatrixDeathTest = ::testing::Test;

TEST(WarehouseMatrixDeathTest, RejectsRaggedMap) {
  EXPECT_DEATH(WarehouseMatrix::FromAscii("...\n..\n"), "ragged");
}

TEST(WarehouseMatrixDeathTest, RejectsBadCharacter) {
  EXPECT_DEATH(WarehouseMatrix::FromAscii("..\n.X\n"), "bad map character");
}

TEST(WarehouseMatrixDeathTest, RejectsEmptyMap) {
  EXPECT_DEATH(WarehouseMatrix::FromAscii(""), "empty");
}

TEST(WarehouseMatrixDeathTest, RejectsNonPositiveDimensions) {
  EXPECT_DEATH(WarehouseMatrix(0, 5), "positive");
}

}  // namespace
}  // namespace carp::core
