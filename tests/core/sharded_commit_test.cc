// Deterministic tests of the sharded concurrent-commit hooks (DESIGN.md
// §2h): two workers committing disjoint-footprint routes truly
// concurrently, an overlapping-footprint commit forced through the
// contention/retry protocol, and the PlanBatch sharded pipeline staying
// bit-identical to its serial counterpart.

#include <gtest/gtest.h>

#include <barrier>
#include <thread>
#include <vector>

#include "baselines/planner_factory.h"
#include "common/sharded_lock.h"
#include "core/batch_planner.h"
#include "core/collision.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "srp/srp_planner.h"

namespace carp::core {
namespace {

// Eight full-width aisle rows -> eight latitudinal strips, one per row.
// With commit_shards == 8 the shard of a row-confined route is exactly its
// row index, which makes footprints fully controllable.
WarehouseMatrix EightRowMatrix() { return WarehouseMatrix(8, 12); }

srp::SrpPlannerOptions EightShardOptions() {
  srp::SrpPlannerOptions options;
  options.commit_shards = 8;
  return options;
}

bool Overlaps(const std::vector<std::uint32_t>& a,
              const std::vector<std::uint32_t>& b) {
  for (std::uint32_t x : a) {
    for (std::uint32_t y : b) {
      if (x == y) return true;
    }
  }
  return false;
}

TEST(ShardedCommitTest, DisjointFootprintsCommitConcurrently) {
  const WarehouseMatrix matrix = EightRowMatrix();
  const auto options = EightShardOptions();

  // Reference: the serial commit path, row 0 then row 4.
  srp::SrpPlanner reference(matrix, options);
  const auto r1 = reference.PlanRoute(0, {0, 0}, {0, 11});
  const auto r2 = reference.PlanRoute(0, {4, 0}, {4, 11});
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());

  srp::SrpPlanner planner(matrix, options);
  std::vector<std::uint32_t> f1, f2;
  planner.ComputeShardFootprint(*r1, f1);
  planner.ComputeShardFootprint(*r2, f2);
  ASSERT_FALSE(f1.empty());
  ASSERT_FALSE(f2.empty());
  ASSERT_FALSE(Overlaps(f1, f2)) << "rows 0 and 4 must map to distinct shards";

  // Both state commits in flight at once, released by a common barrier.
  const std::uint64_t t1 = planner.BeginShardedCommit(*r1);
  const std::uint64_t t2 = planner.BeginShardedCommit(*r2);
  std::barrier sync(2);
  std::thread a([&] {
    sync.arrive_and_wait();
    planner.CommitRouteSharded(*r1, t1);
  });
  std::thread b([&] {
    sync.arrive_and_wait();
    planner.CommitRouteSharded(*r2, t2);
  });
  a.join();
  b.join();
  planner.NoteShardedCommitted(*r1, t1);
  planner.NoteShardedCommitted(*r2, t2);
  planner.OnShardedFlush();

  // Bit-identical to the serial path, with clean invariants.
  EXPECT_EQ(planner.committed_routes(), reference.committed_routes());
  EXPECT_EQ(planner.SegmentCount(), reference.SegmentCount());
  EXPECT_EQ(planner.CheckInvariants(), "");
  EXPECT_TRUE(ValidateRoutes(planner.committed_routes()));

  // Disjoint footprints never hit each other's shards.
  const auto s = planner.stats();
  EXPECT_EQ(s.shard_commits, 2);
  EXPECT_EQ(s.shard_lock_contentions, 0);
  EXPECT_EQ(s.shard_commit_retries, 0);
}

TEST(ShardedCommitTest, OverlappingFootprintRetriesAndMatchesSerial) {
  const WarehouseMatrix matrix = EightRowMatrix();
  const auto options = EightShardOptions();

  // Reference: r1 along row 0, then r3 trailing it two cells behind in the
  // same row — mutually collision-free, same shard footprint.
  srp::SrpPlanner reference(matrix, options);
  const auto r1 = reference.PlanRoute(0, {0, 0}, {0, 11});
  const auto r3 = reference.PlanRoute(0, {0, 2}, {0, 9});
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r3.has_value());

  srp::SrpPlanner planner(matrix, options);
  std::vector<std::uint32_t> f1, f3;
  planner.ComputeShardFootprint(*r1, f1);
  planner.ComputeShardFootprint(*r3, f3);
  ASSERT_TRUE(Overlaps(f1, f3));

  const std::uint64_t t1 = planner.BeginShardedCommit(*r1);
  const std::uint64_t t3 = planner.BeginShardedCommit(*r3);
  planner.CommitRouteSharded(*r1, t1);  // uncontended

  // Force the full contention protocol: hold one of r3's shards while the
  // worker commits, so its guard must fail the try-lock sweep, fail the
  // optimistic re-sweep, and fall back to the blocking acquire. The
  // planner only exposes a const view of its lock set; the test needs to
  // *hold* a shard, which mutates nothing but the lock word.
  auto& locks = const_cast<ShardLockSet&>(planner.shard_locks());
  const std::vector<std::uint32_t> held{f3.front()};
  std::thread worker;
  {
    ShardLockSet::CommitGuard blocker(locks, held);
    worker = std::thread([&] { planner.CommitRouteSharded(*r3, t3); });
    // A blocked guard records exactly one contention and two retry passes
    // before parking on the held shard.
    while (planner.stats().shard_commit_retries < 2) std::this_thread::yield();
  }  // release: the worker's blocking acquire proceeds
  worker.join();
  planner.NoteShardedCommitted(*r1, t1);
  planner.NoteShardedCommitted(*r3, t3);
  planner.OnShardedFlush();

  EXPECT_EQ(planner.committed_routes(), reference.committed_routes());
  EXPECT_EQ(planner.SegmentCount(), reference.SegmentCount());
  EXPECT_EQ(planner.CheckInvariants(), "");
  EXPECT_TRUE(ValidateRoutes(planner.committed_routes()));

  const auto s = planner.stats();
  EXPECT_EQ(s.shard_commits, 3);  // r1, the test's blocker guard, r3
  EXPECT_EQ(s.shard_lock_contentions, 1);
  EXPECT_EQ(s.shard_commit_retries, 2);
}

// Heavily interacting batch on the tiny warehouse (the parallel-batch
// contention scenario): opposing pairs through the same margin rows.
std::vector<BatchQuery> ContendingBatch() {
  std::vector<BatchQuery> queries;
  for (int k = 0; k < 4; ++k) {
    queries.push_back(BatchQuery{{k % 2, 0}, {k % 2, 12}});
    queries.push_back(BatchQuery{{k % 2, 12}, {k % 2, 0}});
  }
  return queries;
}

TEST(ShardedCommitTest, ShardedPipelineMatchesSerialOnContendedBatch) {
  const layout::Warehouse w = layout::GenerateWarehouse(layout::PresetTiny());
  const auto queries = ContendingBatch();

  srp::SrpPlanner serial(w.matrix);
  PlanBatch(serial, 0, queries);

  srp::SrpPlanner sharded(w.matrix);
  BatchPlanOptions options;
  options.threads = 4;
  options.sharded_commit = true;
  const BatchResult result = PlanBatch(sharded, 0, queries, options);

  EXPECT_EQ(sharded.committed_routes(), serial.committed_routes());
  EXPECT_EQ(sharded.SegmentCount(), serial.SegmentCount());
  EXPECT_EQ(sharded.CheckInvariants(), "");
  EXPECT_TRUE(ValidateRoutes(sharded.committed_routes()));
  // Every accepted speculative route went through the shard locks.
  EXPECT_GE(sharded.stats().shard_commits,
            result.speculated - result.invalidated);
}

TEST(ShardedCommitTest, GridCoarseShardMatchesSerialOnContendedBatch) {
  const layout::Warehouse w = layout::GenerateWarehouse(layout::PresetTiny());
  const auto queries = ContendingBatch();

  auto serial = baselines::MakePlanner("SAP", w.matrix);
  BatchPlanOptions serial_options;
  serial_options.threads = 4;
  serial_options.sharded_commit = false;
  PlanBatch(*serial, 0, queries, serial_options);

  auto sharded = baselines::MakePlanner("SAP", w.matrix);
  ASSERT_TRUE(sharded->SupportsShardedCommit());
  EXPECT_EQ(sharded->CommitShardCount(), 1u);
  BatchPlanOptions options;
  options.threads = 4;
  options.sharded_commit = true;
  PlanBatch(*sharded, 0, queries, options);

  // The coarse single-shard path must reproduce the speculative pipeline's
  // committed set exactly (route ids included — stable ids are drawn
  // serially in BeginShardedCommit).
  EXPECT_EQ(sharded->committed_routes(), serial->committed_routes());
  EXPECT_TRUE(ValidateRoutes(sharded->committed_routes()));
  EXPECT_GT(sharded->stats().shard_commits, 0);
}

}  // namespace
}  // namespace carp::core
