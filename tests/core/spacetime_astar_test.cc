#include "core/spacetime_astar.h"

#include <gtest/gtest.h>

#include "core/collision.h"
#include "core/heuristic_table.h"
#include "core/reservation_table.h"

namespace carp::core {
namespace {

class SpaceTimeAStarTest : public ::testing::Test {
 protected:
  WarehouseMatrix matrix_{8, 8};
  ReservationTable table_;
  SpaceTimeAStarOptions options_;
};

TEST_F(SpaceTimeAStarTest, UnobstructedRouteIsManhattanOptimal) {
  SpaceTimeAStar astar(matrix_);
  auto route = astar.Plan(table_, 3, {0, 0}, {5, 4}, options_);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->start_time(), 3);
  EXPECT_EQ(route->length(), ManhattanDistance({0, 0}, {5, 4}) + 1);
  EXPECT_TRUE(route->IsKinematicallyValid(matrix_));
}

TEST_F(SpaceTimeAStarTest, TrivialSameCellQuery) {
  SpaceTimeAStar astar(matrix_);
  auto route = astar.Plan(table_, 0, {2, 2}, {2, 2}, options_);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->length(), 1);
}

TEST_F(SpaceTimeAStarTest, WaitsOutACrossingRoute) {
  // Another robot crosses our corridor; the plan must avoid it, possibly
  // by waiting, and the combined set must be collision-free.
  Route other(0, {{1, 2}, {0, 2}, {0, 2}, {0, 2}, {0, 2}});
  table_.Reserve(1, other);
  SpaceTimeAStar astar(matrix_);
  auto route = astar.Plan(table_, 0, {0, 0}, {0, 5}, options_);
  ASSERT_TRUE(route.has_value());
  EXPECT_TRUE(RouteSetValidator::IsCollisionFree({other, *route}));
}

TEST_F(SpaceTimeAStarTest, AvoidsHeadOnSwap) {
  // A robot travels right-to-left along row 0; we travel left-to-right.
  Route other(0, {{0, 5}, {0, 4}, {0, 3}, {0, 2}, {0, 1}, {0, 0}});
  table_.Reserve(1, other);
  SpaceTimeAStar astar(matrix_);
  auto route = astar.Plan(table_, 0, {0, 0}, {0, 5}, options_);
  ASSERT_TRUE(route.has_value());
  EXPECT_TRUE(RouteSetValidator::IsCollisionFree({other, *route}));
}

TEST_F(SpaceTimeAStarTest, BlockedOriginReturnsNullopt) {
  table_.Reserve(1, Route(0, {{0, 0}, {0, 0}}));
  SpaceTimeAStar astar(matrix_);
  EXPECT_FALSE(astar.Plan(table_, 0, {0, 0}, {3, 3}, options_).has_value());
}

TEST_F(SpaceTimeAStarTest, HorizonBoundsSearch) {
  options_.horizon = 3;
  SpaceTimeAStar astar(matrix_);
  EXPECT_FALSE(astar.Plan(table_, 0, {0, 0}, {7, 7}, options_).has_value());
  options_.horizon = 14;
  EXPECT_TRUE(astar.Plan(table_, 0, {0, 0}, {7, 7}, options_).has_value());
}

TEST_F(SpaceTimeAStarTest, ExpansionBudgetAborts) {
  options_.max_expansions = 2;
  SpaceTimeAStar astar(matrix_);
  EXPECT_FALSE(astar.Plan(table_, 0, {0, 0}, {7, 7}, options_).has_value());
  EXPECT_GT(astar.last_stats().expanded, 0);
}

TEST_F(SpaceTimeAStarTest, WindowLimitsCollisionAwareness) {
  // A blocking robot parks at (0,3) from t=10 on, far beyond the window:
  // the windowed search ignores it (TWP semantics).
  std::vector<GridCoord> park(20, GridCoord{0, 3});
  table_.Reserve(1, Route(10, park));
  options_.window = 2;
  SpaceTimeAStar astar(matrix_);
  auto route = astar.Plan(table_, 9, {0, 0}, {0, 5}, options_);
  ASSERT_TRUE(route.has_value());
  // It walks straight through the parked robot (outside the window).
  EXPECT_EQ(route->length(), 6);
}

TEST_F(SpaceTimeAStarTest, RackEndpointsNeedFlag) {
  matrix_.SetRack({4, 4}, true);
  SpaceTimeAStar astar(matrix_);
  EXPECT_FALSE(astar.Plan(table_, 0, {0, 0}, {4, 4}, options_).has_value());
  options_.allow_endpoint_racks = true;
  auto route = astar.Plan(table_, 0, {0, 0}, {4, 4}, options_);
  ASSERT_TRUE(route.has_value());
  EXPECT_TRUE(route->IsKinematicallyValid(matrix_, true));
}

TEST_F(SpaceTimeAStarTest, RacksBlockIntermediateCells) {
  // Build a wall; route must detour.
  for (std::int32_t i = 0; i < 7; ++i) matrix_.SetRack({i, 4}, true);
  SpaceTimeAStar astar(matrix_);
  auto route = astar.Plan(table_, 0, {0, 0}, {0, 7}, options_);
  ASSERT_TRUE(route.has_value());
  EXPECT_TRUE(route->IsKinematicallyValid(matrix_));
  EXPECT_GT(route->length(), ManhattanDistance({0, 0}, {0, 7}) + 1);
}

TEST_F(SpaceTimeAStarTest, ManyRobotsDenseCorridorAllSafe) {
  // Plan 8 robots one at a time through the same corridor; all routes must
  // be mutually collision-free (the SAP planning principle).
  SpaceTimeAStar astar(matrix_);
  std::vector<Route> routes;
  for (int k = 0; k < 8; ++k) {
    const GridCoord origin{static_cast<std::int32_t>(k), 0};
    const GridCoord dest{static_cast<std::int32_t>(7 - k), 7};
    auto route = astar.Plan(table_, 0, origin, dest, options_);
    ASSERT_TRUE(route.has_value()) << "robot " << k;
    table_.Reserve(k, *route);
    routes.push_back(*route);
  }
  EXPECT_TRUE(RouteSetValidator::IsCollisionFree(routes));
}

TEST_F(SpaceTimeAStarTest, ScratchReusedAcrossQueriesWithoutReallocation) {
  SpaceTimeAStar astar(matrix_);
  // Warm-up queries size the retained workspace (parent map + open heap).
  for (int k = 0; k < 3; ++k) {
    ASSERT_TRUE(astar.Plan(table_, 0, {0, 0}, {7, 7}, options_).has_value());
  }
  const auto warm = astar.scratch_footprint();
  EXPECT_GT(warm.parent_slots, 0u);
  EXPECT_GT(warm.open_capacity, 0u);
  // Steady state: repeating the same query must not grow either container
  // — reuse is clear-by-epoch, never reallocate.
  for (int k = 0; k < 16; ++k) {
    ASSERT_TRUE(astar.Plan(table_, 0, {0, 0}, {7, 7}, options_).has_value());
    const auto now = astar.scratch_footprint();
    EXPECT_EQ(now.parent_slots, warm.parent_slots);
    EXPECT_EQ(now.open_capacity, warm.open_capacity);
  }
}

TEST_F(SpaceTimeAStarTest, HeapAndBucketQueuesAreBitIdentical) {
  // The dial open list must reproduce the heap's (f asc, g desc, serial
  // asc) total order exactly: identical routes *and* identical expansion
  // counts, congested or not.
  for (std::int32_t i = 0; i < 7; ++i) matrix_.SetRack({i, 4}, true);
  Route other(0, {{0, 5}, {0, 4}, {0, 3}, {0, 2}, {0, 1}, {0, 0}});
  table_.Reserve(1, other);

  SpaceTimeAStarOptions heap_opts = options_;
  heap_opts.queue = SearchQueue::kHeap;
  SpaceTimeAStarOptions bucket_opts = options_;
  bucket_opts.queue = SearchQueue::kBucket;

  SpaceTimeAStar heap_astar(matrix_);
  SpaceTimeAStar bucket_astar(matrix_);
  const GridCoord queries[][2] = {
      {{0, 0}, {0, 7}}, {{7, 0}, {0, 6}}, {{3, 3}, {3, 3}}, {{0, 0}, {7, 7}}};
  for (const auto& q : queries) {
    const auto rh = heap_astar.Plan(table_, 0, q[0], q[1], heap_opts);
    const auto rb = bucket_astar.Plan(table_, 0, q[0], q[1], bucket_opts);
    ASSERT_EQ(rh.has_value(), rb.has_value());
    if (rh.has_value()) {
      EXPECT_EQ(rh->cells(), rb->cells());
      EXPECT_EQ(rh->start_time(), rb->start_time());
    }
    EXPECT_EQ(heap_astar.last_stats().expanded,
              bucket_astar.last_stats().expanded);
    EXPECT_EQ(heap_astar.last_stats().generated,
              bucket_astar.last_stats().generated);
  }
}

TEST_F(SpaceTimeAStarTest, TableHeuristicKeepsArrivalAndExpandsNoMore) {
  // A wall forces a detour, which is exactly where Manhattan underestimates
  // and the true-distance table stays exact.
  for (std::int32_t i = 0; i < 7; ++i) matrix_.SetRack({i, 4}, true);
  const GridCoord origin{0, 0};
  const GridCoord destination{0, 7};
  const HeuristicTable table(matrix_, destination);

  SpaceTimeAStar manhattan(matrix_);
  const auto route_m = manhattan.Plan(table_, 0, origin, destination, options_);
  ASSERT_TRUE(route_m.has_value());

  SpaceTimeAStarOptions guided = options_;
  guided.heuristic = &table;
  SpaceTimeAStar tabled(matrix_);
  const auto route_t = tabled.Plan(table_, 0, origin, destination, guided);
  ASSERT_TRUE(route_t.has_value());

  EXPECT_EQ(route_m->end_time(), route_t->end_time());
  EXPECT_LE(tabled.last_stats().expanded, manhattan.last_stats().expanded);
}

}  // namespace
}  // namespace carp::core
