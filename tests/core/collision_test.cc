#include "core/collision.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace carp::core {
namespace {

TEST(FindConflictTest, VertexConflictDetected) {
  Route r1(0, {{0, 0}, {0, 1}, {0, 2}});
  Route r2(0, {{1, 1}, {0, 1}, {0, 0}});  // both at (0,1) at t=1
  auto c = FindConflict(r1, r2);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->kind, RouteConflictKind::kVertex);
  EXPECT_EQ(c->time, 1);
  EXPECT_EQ(c->cell, (GridCoord{0, 1}));
}

TEST(FindConflictTest, SwapConflictDetected) {
  Route r1(0, {{0, 0}, {0, 1}});
  Route r2(0, {{0, 1}, {0, 0}});
  auto c = FindConflict(r1, r2);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->kind, RouteConflictKind::kSwap);
  EXPECT_EQ(c->time, 0);
}

TEST(FindConflictTest, FollowingIsLegal) {
  Route r1(0, {{0, 1}, {0, 2}, {0, 3}});
  Route r2(0, {{0, 0}, {0, 1}, {0, 2}});
  EXPECT_FALSE(FindConflict(r1, r2).has_value());
}

TEST(FindConflictTest, DisjointTimesNoConflict) {
  Route r1(0, {{0, 0}, {0, 1}});
  Route r2(5, {{0, 1}, {0, 0}});
  EXPECT_FALSE(FindConflict(r1, r2).has_value());
}

TEST(FindConflictTest, SameCellDifferentTimesLegal) {
  // Both visit (0,1), but r1 is there at t=1 and r2 only at t=2, after r1's
  // route has already ended — no vertex or swap conflict.
  Route r1(0, {{0, 0}, {0, 1}});
  Route r2(0, {{0, 2}, {0, 2}, {0, 1}});
  EXPECT_FALSE(FindConflict(r1, r2).has_value());
  EXPECT_TRUE(RouteSetValidator::IsCollisionFree({r1, r2}));
}

TEST(FindConflictTest, EmptyRoutesNeverConflict) {
  EXPECT_FALSE(FindConflict(Route(), Route()).has_value());
  EXPECT_FALSE(FindConflict(Route(0, {{0, 0}}), Route()).has_value());
}

TEST(RouteSetValidatorTest, EmptySetIsFree) {
  EXPECT_TRUE(RouteSetValidator::IsCollisionFree({}));
}

TEST(RouteSetValidatorTest, FindsVertexConflictPair) {
  std::vector<Route> routes = {
      Route(0, {{0, 0}, {0, 1}, {0, 2}}),
      Route(0, {{2, 2}, {1, 2}, {0, 2}}),   // no conflict with #0
      Route(1, {{1, 1}, {0, 1}}),           // hmm: (0,1) at t=2 vs #0 at t=1
  };
  // Adjust: make route 2 collide with route 0 at (0,1), t=1.
  routes[2] = Route(0, {{1, 1}, {0, 1}});
  auto conflicts = RouteSetValidator::FindAllConflicts(routes);
  ASSERT_FALSE(conflicts.empty());
  EXPECT_FALSE(RouteSetValidator::IsCollisionFree(routes));
}

TEST(RouteSetValidatorTest, FindsSwapConflictPair) {
  std::vector<Route> routes = {
      Route(3, {{0, 0}, {0, 1}}),
      Route(3, {{0, 1}, {0, 0}}),
  };
  auto conflicts = RouteSetValidator::FindAllConflicts(routes);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].kind, RouteConflictKind::kSwap);
  EXPECT_EQ(conflicts[0].time, 3);
}

TEST(RouteSetValidatorTest, CleanSetPasses) {
  std::vector<Route> routes = {
      Route(0, {{0, 0}, {0, 1}, {0, 2}}),
      Route(0, {{2, 0}, {2, 1}, {2, 2}}),
      Route(1, {{1, 0}, {1, 1}, {1, 2}}),
  };
  EXPECT_TRUE(RouteSetValidator::IsCollisionFree(routes));
}

// Property: the set validator must agree with all-pairs FindConflict on
// whether a random route set is collision-free.
class ValidatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ValidatorPropertyTest, AgreesWithPairwiseOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<Route> routes;
    const int n = 2 + static_cast<int>(rng.UniformU32(6));
    for (int k = 0; k < n; ++k) {
      const TimeStep st = rng.UniformInt(0, 4);
      GridCoord at{static_cast<std::int32_t>(rng.UniformU32(4)),
                   static_cast<std::int32_t>(rng.UniformU32(4))};
      std::vector<GridCoord> cells{at};
      const int len = 1 + static_cast<int>(rng.UniformU32(8));
      for (int s = 0; s < len; ++s) {
        GridCoord next = at;
        switch (rng.UniformU32(5)) {
          case 0: next.row = std::max(0, at.row - 1); break;
          case 1: next.row = std::min(3, at.row + 1); break;
          case 2: next.col = std::max(0, at.col - 1); break;
          case 3: next.col = std::min(3, at.col + 1); break;
          default: break;  // wait
        }
        cells.push_back(next);
        at = next;
      }
      routes.emplace_back(st, std::move(cells));
    }

    bool pairwise_free = true;
    for (std::size_t i = 0; i < routes.size() && pairwise_free; ++i) {
      for (std::size_t j = i + 1; j < routes.size() && pairwise_free; ++j) {
        pairwise_free = !FindConflict(routes[i], routes[j]).has_value();
      }
    }
    EXPECT_EQ(RouteSetValidator::IsCollisionFree(routes), pairwise_free);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace carp::core
