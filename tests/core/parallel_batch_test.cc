// Tests of the speculative parallel PlanBatch pipeline: determinism across
// thread counts, equality with the serial prioritized loop, and
// collision-freedom under contention (ISSUE: validate-and-commit).

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "baselines/planner_factory.h"
#include "core/batch_planner.h"
#include "core/collision.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "srp/srp_planner.h"

namespace carp::core {
namespace {

const layout::Warehouse& W1() {
  static auto* w = new layout::Warehouse(
      layout::GenerateWarehouse(layout::PresetByName("W-1")));
  return *w;
}

// Rack-access -> picker queries with distinct origins and destinations
// (the W-1 scenario of the determinism test; fixed seed).
std::vector<BatchQuery> SpreadQueries(const layout::Warehouse& w,
                                      std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::size_t> racks(w.rack_access.size());
  std::vector<std::size_t> pickers(w.pickers.size());
  for (std::size_t i = 0; i < racks.size(); ++i) racks[i] = i;
  for (std::size_t i = 0; i < pickers.size(); ++i) pickers[i] = i;
  std::shuffle(racks.begin(), racks.end(), rng);
  std::shuffle(pickers.begin(), pickers.end(), rng);
  count = std::min({count, racks.size(), pickers.size()});
  std::vector<BatchQuery> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queries.push_back(
        BatchQuery{w.rack_access[racks[i]], w.pickers[pickers[i]]});
  }
  return queries;
}

// Heavily interacting batch on the tiny warehouse: opposing pairs through
// the same margin rows, guaranteed to invalidate speculative routes.
std::vector<BatchQuery> ContendingBatch() {
  std::vector<BatchQuery> queries;
  for (int k = 0; k < 4; ++k) {
    queries.push_back(BatchQuery{{k % 2, 0}, {k % 2, 12}});
    queries.push_back(BatchQuery{{k % 2, 12}, {k % 2, 0}});
  }
  return queries;
}

std::vector<Route> CommittedSet(Planner& planner,
                                const std::vector<BatchQuery>& queries,
                                int threads, BatchResult* out = nullptr) {
  BatchPlanOptions options;
  options.threads = threads;
  BatchResult result = PlanBatch(planner, /*t=*/0, queries, options);
  if (out != nullptr) *out = result;
  return planner.committed_routes();
}

TEST(ParallelBatchTest, ThreadCountsMatchSerialOnSpreadW1Batch) {
  const auto& w = W1();
  const auto queries = SpreadQueries(w, 24, /*seed=*/17);
  ASSERT_GE(queries.size(), 20u);

  // Reference: the historic serial entry point (no execution options).
  srp::SrpPlanner serial(w.matrix);
  const auto serial_result = PlanBatch(serial, 0, queries);
  EXPECT_EQ(serial_result.failed, 0);
  const std::vector<Route> reference = serial.committed_routes();
  ASSERT_TRUE(ValidateRoutes(reference));

  for (int threads : {1, 2, 8}) {
    srp::SrpPlanner planner(w.matrix);
    BatchResult result;
    const auto routes = CommittedSet(planner, queries, threads, &result);
    EXPECT_EQ(result.failed, 0) << "threads=" << threads;
    EXPECT_TRUE(ValidateRoutes(routes)) << "threads=" << threads;
    EXPECT_EQ(routes, reference) << "threads=" << threads;
    if (threads > 1) {
      EXPECT_EQ(result.speculated, result.planned);
    } else {
      EXPECT_EQ(result.speculated, 0);  // serial loop, no speculation
    }
  }
}

TEST(ParallelBatchTest, ContendedBatchInvalidatesAndStaysCollisionFree) {
  const layout::Warehouse w =
      layout::GenerateWarehouse(layout::PresetTiny());
  const auto queries = ContendingBatch();

  srp::SrpPlanner planner(w.matrix);
  BatchResult result;
  const auto routes = CommittedSet(planner, queries, /*threads=*/4, &result);

  EXPECT_EQ(result.failed, 0);
  EXPECT_TRUE(ValidateRoutes(routes));
  EXPECT_GT(result.speculated, 0);
  // Opposing same-row pairs cannot all keep their snapshot routes.
  EXPECT_GT(result.invalidated, 0);
  EXPECT_GT(planner.stats().SpeculationConflictRate(), 0.0);
  EXPECT_EQ(planner.stats().speculative_invalidated, result.invalidated);
}

TEST(ParallelBatchTest, ParallelResultIndependentOfThreadCount) {
  const layout::Warehouse w =
      layout::GenerateWarehouse(layout::PresetTiny());
  const auto queries = ContendingBatch();

  srp::SrpPlanner two(w.matrix);
  srp::SrpPlanner eight(w.matrix);
  const auto routes2 = CommittedSet(two, queries, 2);
  const auto routes8 = CommittedSet(eight, queries, 8);
  EXPECT_EQ(routes2, routes8);
}

TEST(ParallelBatchTest, GridBaselinePlansParallelBatchesSafely) {
  const layout::Warehouse w =
      layout::GenerateWarehouse(layout::PresetTiny());
  const auto queries = ContendingBatch();

  auto serial = baselines::MakePlanner("SAP", w.matrix);
  const auto serial_result = PlanBatch(*serial, 0, queries);

  auto parallel = baselines::MakePlanner("SAP", w.matrix);
  BatchResult result;
  const auto routes = CommittedSet(*parallel, queries, 4, &result);

  EXPECT_TRUE(ValidateRoutes(routes));
  EXPECT_EQ(result.planned, serial_result.planned);
  EXPECT_EQ(result.failed, serial_result.failed);
  EXPECT_EQ(routes, serial->committed_routes());
}

TEST(ParallelBatchTest, ExternalPoolIsReusedAcrossBatches) {
  const layout::Warehouse w =
      layout::GenerateWarehouse(layout::PresetTiny());
  const auto queries = ContendingBatch();

  ThreadPool pool(4);
  srp::SrpPlanner pooled(w.matrix);
  srp::SrpPlanner transient(w.matrix);

  BatchPlanOptions options;
  options.threads = 4;
  options.pool = &pool;
  const auto a = PlanBatch(pooled, 0, queries, options);

  options.pool = nullptr;
  const auto b = PlanBatch(transient, 0, queries, options);

  EXPECT_EQ(a.planned, b.planned);
  EXPECT_EQ(pooled.committed_routes(), transient.committed_routes());
  EXPECT_TRUE(ValidateRoutes(pooled.committed_routes()));
}

TEST(ParallelBatchTest, StatsFoldQueriesFromAllWorkers) {
  const layout::Warehouse w =
      layout::GenerateWarehouse(layout::PresetTiny());
  const auto queries = ContendingBatch();

  srp::SrpPlanner planner(w.matrix);
  BatchResult result;
  CommittedSet(planner, queries, 4, &result);
  // Every query was attempted speculatively; invalidated ones were
  // re-planned serially on top.
  EXPECT_EQ(planner.stats().queries,
            static_cast<std::int64_t>(queries.size()) + result.invalidated);
  EXPECT_EQ(planner.stats().speculative_routes, result.speculated);
}

}  // namespace
}  // namespace carp::core
