#include "core/heuristic_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.h"

#include "baselines/planner_factory.h"
#include "core/spatial_paths.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"

namespace carp::core {
namespace {

layout::Warehouse Paper(const char* name) {
  return layout::GenerateWarehouse(layout::PresetByName(name));
}

/// Table distances must equal the independent spatial BFS on every
/// traversable cell, for picker (aisle) goals on each paper preset.
TEST(HeuristicTableTest, MatchesSpatialBfsOnPaperPresets) {
  for (const char* name : {"W-1", "W-2", "W-3"}) {
    const layout::Warehouse w = Paper(name);
    const SpatialPathFinder finder(w.matrix);
    // A handful of goals per preset keeps the sweep fast; cells are
    // compared exhaustively per goal.
    for (std::size_t gi = 0; gi < w.pickers.size(); gi += 7) {
      const GridCoord goal = w.pickers[gi];
      const HeuristicTable table(w.matrix, goal);
      const auto bfs = finder.DistancesFrom(goal);
      for (std::int64_t i = 0; i < w.matrix.CellCount(); ++i) {
        const GridCoord cell = w.matrix.CoordOf(i);
        const TimeStep d = table.At(cell);
        if (!w.matrix.IsTraversable(cell)) {
          EXPECT_EQ(d, kInfiniteTime)
              << name << " rack cell " << cell << " got finite distance";
          continue;
        }
        const auto ref = bfs[static_cast<std::size_t>(i)];
        if (ref < 0) {
          EXPECT_EQ(d, kInfiniteTime) << name << " cell " << cell;
        } else {
          EXPECT_EQ(d, TimeStep{ref}) << name << " cell " << cell;
        }
      }
    }
  }
}

/// A rack goal is entered as an endpoint only: its own distance is 0, every
/// aisle cell's distance is 1 + the BFS distance to the goal's nearest
/// traversable neighbour, and every *other* rack cell stays infinite.
TEST(HeuristicTableTest, RackGoalEnteredAsEndpointOnly) {
  const layout::Warehouse w = Paper("W-1");
  // rack_access points are aisle cells; pick an actual rack cell as goal.
  GridCoord goal{-1, -1};
  for (std::int64_t i = 0; i < w.matrix.CellCount() && goal.row < 0; ++i) {
    if (!w.matrix.IsTraversable(w.matrix.CoordOf(i))) {
      goal = w.matrix.CoordOf(i);
    }
  }
  ASSERT_GE(goal.row, 0);
  ASSERT_FALSE(w.matrix.IsTraversable(goal));
  const HeuristicTable table(w.matrix, goal);
  EXPECT_EQ(table.At(goal), 0);

  const SpatialPathFinder finder(w.matrix);
  std::vector<std::vector<std::int32_t>> nbr_bfs;
  GridCoord nbrs[4];
  const int cnt = w.matrix.Neighbors(goal, nbrs);
  for (int k = 0; k < cnt; ++k) {
    if (w.matrix.IsTraversable(nbrs[k])) {
      nbr_bfs.push_back(finder.DistancesFrom(nbrs[k]));
    }
  }
  ASSERT_FALSE(nbr_bfs.empty());
  for (std::int64_t i = 0; i < w.matrix.CellCount(); ++i) {
    const GridCoord cell = w.matrix.CoordOf(i);
    if (!w.matrix.IsTraversable(cell)) {
      if (!(cell == goal)) {
        EXPECT_EQ(table.At(cell), kInfiniteTime);
      }
      continue;
    }
    TimeStep ref = kInfiniteTime;
    for (const auto& bfs : nbr_bfs) {
      const auto d = bfs[static_cast<std::size_t>(i)];
      if (d >= 0) ref = std::min(ref, TimeStep{d} + 1);
    }
    EXPECT_EQ(table.At(cell), ref) << "cell " << cell;
  }
}

/// LowerBound must be admissible *and* consistent everywhere: it never
/// exceeds a neighbour's bound plus the step cost.
TEST(HeuristicTableTest, LowerBoundIsConsistentAcrossNeighbours) {
  const layout::Warehouse w = Paper("W-1");
  const HeuristicTable table(w.matrix, w.pickers.front());
  GridCoord nbrs[4];
  for (std::int64_t i = 0; i < w.matrix.CellCount(); ++i) {
    const GridCoord cell = w.matrix.CoordOf(i);
    if (!w.matrix.IsTraversable(cell)) continue;
    const int cnt = w.matrix.Neighbors(cell, nbrs);
    for (int k = 0; k < cnt; ++k) {
      if (!w.matrix.IsTraversable(nbrs[k])) continue;
      EXPECT_LE(table.LowerBound(cell), table.LowerBound(nbrs[k]) + 1)
          << cell << " -> " << nbrs[k];
    }
  }
}

/// Region minima: with a region map, RegionMin(r) is exactly the smallest
/// table distance over the region's cells.
TEST(HeuristicTableTest, RegionMinIsExactMinimumOverRegionCells) {
  const layout::Warehouse w = Paper("W-1");
  // Two regions: left half / right half of the grid, racks unassigned.
  std::vector<std::int32_t> region(
      static_cast<std::size_t>(w.matrix.CellCount()), -1);
  for (std::int64_t i = 0; i < w.matrix.CellCount(); ++i) {
    const GridCoord cell = w.matrix.CoordOf(i);
    if (!w.matrix.IsTraversable(cell)) continue;
    region[static_cast<std::size_t>(i)] =
        cell.col < w.matrix.width() / 2 ? 0 : 1;
  }
  const GridCoord goal = w.pickers.front();
  const HeuristicTable table(w.matrix, goal, &region, 2);
  for (std::int32_t r = 0; r < 2; ++r) {
    TimeStep expected = kInfiniteTime;
    for (std::int64_t i = 0; i < w.matrix.CellCount(); ++i) {
      if (region[static_cast<std::size_t>(i)] != r) continue;
      expected = std::min(expected, table.At(w.matrix.CoordOf(i)));
    }
    EXPECT_EQ(table.RegionMin(r), expected) << "region " << r;
  }
  EXPECT_EQ(table.RegionMin(2), kInfiniteTime);   // out of range
  EXPECT_EQ(table.RegionMin(-1), kInfiniteTime);  // unassigned marker
}

/// Admissibility against real planner output: no committed route can beat
/// the table's lower bound for its own origin/destination pair, even as
/// reservations force detours and waits.
TEST(HeuristicTableTest, NeverExceedsValidRouteCosts) {
  const layout::Warehouse w = Paper("W-1");
  auto planner = baselines::MakePlanner("SAP", w.matrix);
  TimeStep now = 0;
  for (std::size_t i = 0; i + 1 < w.rack_access.size() && i < 24; i += 2) {
    const GridCoord origin = w.rack_access[i];
    const GridCoord destination = w.pickers[i % w.pickers.size()];
    const auto route = planner->PlanRoute(now, origin, destination);
    ASSERT_TRUE(route.has_value());
    const HeuristicTable table(w.matrix, destination);
    // Actual cost from the cell the route departs from; dispatch may delay
    // the start, never shorten the path.
    EXPECT_LE(table.At(origin), route->end_time() - route->start_time())
        << origin << " -> " << destination;
    now += 3;
  }
}

/// The uint16 encoding (DESIGN.md §2j): distances beyond the encodable
/// range saturate at kMaxEncodable (still a lower bound, so admissible) and
/// the unreachable sentinel round-trips to kInfiniteTime.
TEST(HeuristicTableTest, Uint16EncodingSaturatesAdmissibly) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTable table(w.matrix, w.pickers.front());
  const GridCoord probe = w.pickers.back();
  const TimeStep exact = table.At(probe);
  ASSERT_LT(exact, kInfiniteTime);

  // Small values round-trip exactly.
  table.CorruptForTest(probe, 7);
  EXPECT_EQ(table.At(probe), 7);
  // Values past the encodable range clamp instead of wrapping.
  table.CorruptForTest(probe, TimeStep{HeuristicTable::kMaxEncodable} + 1000);
  EXPECT_EQ(table.At(probe), TimeStep{HeuristicTable::kMaxEncodable});
  // The sentinel decodes back to "unreachable".
  table.CorruptForTest(probe, kInfiniteTime);
  EXPECT_EQ(table.At(probe), kInfiniteTime);
  // Restore so the table is honest again (documents the round trip).
  table.CorruptForTest(probe, exact);
  EXPECT_EQ(table.At(probe), exact);
}

TEST(HeuristicTableCacheTest, HitsAndMissesAreCounted) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTableCache cache(w.matrix);
  const auto a = cache.Acquire(w.pickers[0]);
  const auto b = cache.Acquire(w.pickers[0]);
  const auto c = cache.Acquire(w.pickers[1]);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.evictions, 0);
  EXPECT_EQ(s.tables, 2u);
  EXPECT_EQ(s.bytes, 2 * cache.table_bytes());
}

/// With one shard and a budget of exactly two tables, a third distinct
/// goal evicts the least-recently-used one — and the evicted goal rebuilds
/// (a new miss) while its bit-identical distances keep answers unchanged.
TEST(HeuristicTableCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTableCache::Options options;
  options.shards = 1;
  options.budget_bytes = 2 * HeuristicTable::BytesFor(w.matrix, 0);
  HeuristicTableCache cache(w.matrix, options);

  const GridCoord g0 = w.pickers[0];
  const GridCoord g1 = w.pickers[1];
  const GridCoord g2 = w.pickers[2];
  const auto t0 = cache.Acquire(g0);
  const auto t1 = cache.Acquire(g1);
  (void)cache.Acquire(g0);  // refresh g0: g1 becomes the LRU victim
  const auto t2 = cache.Acquire(g2);
  ASSERT_NE(t2, nullptr);

  auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.tables, 2u);
  EXPECT_LE(s.bytes, options.budget_bytes);

  // g0 survived (it was refreshed), g1 rebuilds from scratch.
  (void)cache.Acquire(g0);
  EXPECT_EQ(cache.stats().misses, 3);
  const auto t1_again = cache.Acquire(g1);
  ASSERT_NE(t1_again, nullptr);
  EXPECT_EQ(cache.stats().misses, 4);
  // The rebuilt table answers exactly like the evicted snapshot (still
  // alive through our shared_ptr).
  for (std::int64_t i = 0; i < w.matrix.CellCount(); i += 37) {
    const GridCoord cell = w.matrix.CoordOf(i);
    EXPECT_EQ(t1->At(cell), t1_again->At(cell));
  }
}

/// A budget too small for even one table deterministically disables the
/// cache: every Acquire answers nullptr (callers fall back to Manhattan).
TEST(HeuristicTableCacheTest, SubTableBudgetAlwaysFallsBackToManhattan) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTableCache::Options options;
  options.shards = 1;
  options.budget_bytes = HeuristicTable::BytesFor(w.matrix, 0) - 1;
  HeuristicTableCache cache(w.matrix, options);
  EXPECT_EQ(cache.Acquire(w.pickers[0]), nullptr);
  EXPECT_EQ(cache.Acquire(w.pickers[1]), nullptr);
  EXPECT_EQ(cache.stats().tables, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

/// Concurrent Acquires of one goal build exactly once: late arrivals block
/// on the publication condition variable and then hit.
TEST(HeuristicTableCacheTest, ConcurrentSameGoalAcquiresBuildOnce) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTableCache cache(w.matrix);
  const GridCoord goal = w.pickers.front();
  constexpr int kThreads = 4;
  std::vector<std::shared_ptr<const HeuristicTable>> acquired(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back(
        [&, i] { acquired[static_cast<std::size_t>(i)] = cache.Acquire(goal); });
  }
  for (auto& t : workers) t.join();
  for (const auto& table : acquired) {
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table.get(), acquired.front().get());
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, kThreads - 1);
  EXPECT_EQ(s.tables, 1u);
}

TEST(HeuristicTableCacheTest, ClearDropsTablesButKeepsSnapshotsAlive) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTableCache cache(w.matrix);
  const auto snapshot = cache.Acquire(w.pickers[0]);
  ASSERT_NE(snapshot, nullptr);
  cache.Clear();
  EXPECT_EQ(cache.stats().tables, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  // The snapshot still answers — eviction only dropped the cache's ref.
  EXPECT_EQ(snapshot->At(w.pickers[0]), 0);
  // Re-acquiring after Clear is a rebuild.
  EXPECT_NE(cache.Acquire(w.pickers[0]), nullptr);
  EXPECT_EQ(cache.stats().misses, 2);
}

/// Prefetch that completes before first use: the demand Acquire is a hit
/// (no in-query build) and is attributed to the prefetcher exactly once.
TEST(HeuristicTableCacheTest, PrefetchWarmsTableBeforeFirstAcquire) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTableCache cache(w.matrix);
  ThreadPool pool(2);
  const GridCoord goal = w.pickers.front();

  cache.Prefetch(goal, pool);
  cache.Prefetch(goal, pool);  // duplicate: slot already claimed, no-op
  pool.WaitIdle();

  auto s = cache.stats();
  EXPECT_EQ(s.prefetch_scheduled, 1);
  EXPECT_EQ(s.misses, 1);  // the prefetched build is the miss
  EXPECT_EQ(s.tables, 1u);
  EXPECT_GT(s.prefetch_build_seconds, 0.0);
  EXPECT_GE(s.build_seconds, s.prefetch_build_seconds);

  const auto table = cache.Acquire(goal);
  ASSERT_NE(table, nullptr);
  s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.prefetch_hits, 1);
  EXPECT_EQ(s.prefetch_late, 0);

  // Later Acquires are plain hits; the prefetch attribution is consumed.
  (void)cache.Acquire(goal);
  s = cache.stats();
  EXPECT_EQ(s.hits, 2);
  EXPECT_EQ(s.prefetch_hits, 1);
  // Prefetching a cached goal is a no-op.
  cache.Prefetch(goal, pool);
  pool.WaitIdle();
  EXPECT_EQ(cache.stats().prefetch_scheduled, 1);
}

/// A prefetched table is bit-identical to a demand-built one — prefetch
/// moves *when* the BFS runs, never what it computes.
TEST(HeuristicTableCacheTest, PrefetchedTableMatchesDemandBuild) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTableCache cache(w.matrix);
  ThreadPool pool(1);
  const GridCoord goal = w.rack_access.front();
  cache.Prefetch(goal, pool);
  pool.WaitIdle();
  const auto prefetched = cache.Acquire(goal);
  ASSERT_NE(prefetched, nullptr);
  const HeuristicTable demand(w.matrix, goal);
  for (std::int64_t i = 0; i < w.matrix.CellCount(); i += 13) {
    const GridCoord cell = w.matrix.CoordOf(i);
    ASSERT_EQ(prefetched->At(cell), demand.At(cell)) << "cell " << cell;
  }
}

/// Demand arriving while the prefetched build is still queued counts as a
/// late prefetch, waits for the same publication, and returns the same
/// table — never a Manhattan fallback. A deliberately blocked one-thread
/// pool pins the build behind the demand Acquire deterministically.
TEST(HeuristicTableCacheTest, PrefetchLateWhenDemandBeatsTheBuild) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTableCache cache(w.matrix);
  ThreadPool pool(1);
  const GridCoord goal = w.pickers.front();

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  pool.Submit([released] { released.wait(); });  // park the only worker
  cache.Prefetch(goal, pool);  // build slot claimed; BFS queued behind park
  EXPECT_EQ(cache.stats().prefetch_scheduled, 1);

  std::shared_ptr<const HeuristicTable> acquired;
  std::thread demand([&] { acquired = cache.Acquire(goal); });
  // The demand thread marks the prefetch late *before* blocking on the
  // publication condvar; the build cannot have started (worker parked), so
  // this converges deterministically.
  while (cache.stats().prefetch_late == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.set_value();
  demand.join();
  pool.WaitIdle();

  ASSERT_NE(acquired, nullptr);
  EXPECT_EQ(acquired->At(goal), 0);
  const auto s = cache.stats();
  EXPECT_EQ(s.prefetch_late, 1);
  EXPECT_EQ(s.prefetch_hits, 0);  // late and hit are mutually exclusive
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 1);  // the waiter's post-publication acquire
}

/// Eviction-thrash regression (ISSUE 9 satellite): with the compact uint16
/// encoding, a W-3-sized working set of goals fits the *default* budget —
/// two full passes over every goal must rebuild nothing.
TEST(HeuristicTableCacheTest, PaperWorkingSetNeverRebuildsUnderDefaultBudget) {
  const layout::Warehouse w = Paper("W-3");
  HeuristicTableCache cache(w.matrix);
  // The measured W-3 run touches ~85 distinct goals (all pickers plus the
  // day's rack faces); sample rack_access to that size.
  std::vector<GridCoord> goals;
  std::unordered_set<std::int64_t> seen;
  auto add = [&](GridCoord g) {
    if (seen.insert(w.matrix.Index(g)).second) goals.push_back(g);
  };
  for (const GridCoord g : w.pickers) add(g);
  const std::size_t want_racks = goals.size() < 85 ? 85 - goals.size() : 0;
  const std::size_t stride =
      std::max<std::size_t>(1, w.rack_access.size() / std::max<std::size_t>(
                                                          want_racks, 1));
  for (std::size_t i = 0; i < w.rack_access.size() && goals.size() < 85;
       i += stride) {
    add(w.rack_access[i]);
  }
  ASSERT_GE(goals.size(), 64u);

  for (int pass = 0; pass < 2; ++pass) {
    for (const GridCoord goal : goals) {
      ASSERT_NE(cache.Acquire(goal), nullptr);
    }
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.rebuilds, 0) << "eviction thrash under the default budget";
  EXPECT_EQ(s.evictions, 0);
  EXPECT_EQ(s.misses, static_cast<std::int64_t>(goals.size()));
  // The uint16 encoding is what makes this fit: the retained working set
  // must sit at least 40% below the PR 4 int64-era 53.9 MB footprint.
  EXPECT_LE(s.bytes, static_cast<std::size_t>(53.9 * 0.6 * (1 << 20)));
}

/// Concurrent Prefetch + Acquire under an eviction-heavy tiny budget: the
/// TSan target for the prefetch publication protocol. Correctness bar:
/// every Acquire answers, answers exactly, and the budget holds.
TEST(HeuristicTableCacheTest, ConcurrentPrefetchUnderEvictionPressure) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTableCache::Options options;
  options.shards = 2;
  options.budget_bytes = 4 * HeuristicTable::BytesFor(w.matrix, 0);
  HeuristicTableCache cache(w.matrix, options);
  ThreadPool pool(2);

  const std::size_t kGoals = std::min<std::size_t>(8, w.pickers.size());
  ASSERT_GE(kGoals, 4u);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 12; ++round) {
        const GridCoord goal =
            w.pickers[static_cast<std::size_t>(round + t) % kGoals];
        if ((round + t) % 2 == 0) cache.Prefetch(goal, pool);
        const auto table = cache.Acquire(goal);
        ASSERT_NE(table, nullptr);
        EXPECT_EQ(table->At(goal), 0);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  pool.WaitIdle();
  const auto s = cache.stats();
  EXPECT_LE(s.bytes, options.budget_bytes);
  // Attribution never exceeds what was scheduled (evicted-before-use
  // prefetches are the only ones that go unconsumed).
  EXPECT_LE(s.prefetch_hits + s.prefetch_late, s.prefetch_scheduled);
}

TEST(HeuristicModeTest, ParseRoundTrips) {
  EXPECT_EQ(ParseHeuristicMode("manhattan"), HeuristicMode::kManhattan);
  EXPECT_EQ(ParseHeuristicMode("table"), HeuristicMode::kTable);
  EXPECT_FALSE(ParseHeuristicMode("euclid").has_value());
  EXPECT_EQ(ToString(HeuristicMode::kManhattan), "manhattan");
  EXPECT_EQ(ToString(HeuristicMode::kTable), "table");
}

}  // namespace
}  // namespace carp::core
