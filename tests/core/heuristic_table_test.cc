#include "core/heuristic_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/planner_factory.h"
#include "core/spatial_paths.h"
#include "layout/layout_generator.h"
#include "layout/presets.h"

namespace carp::core {
namespace {

layout::Warehouse Paper(const char* name) {
  return layout::GenerateWarehouse(layout::PresetByName(name));
}

/// Table distances must equal the independent spatial BFS on every
/// traversable cell, for picker (aisle) goals on each paper preset.
TEST(HeuristicTableTest, MatchesSpatialBfsOnPaperPresets) {
  for (const char* name : {"W-1", "W-2", "W-3"}) {
    const layout::Warehouse w = Paper(name);
    const SpatialPathFinder finder(w.matrix);
    // A handful of goals per preset keeps the sweep fast; cells are
    // compared exhaustively per goal.
    for (std::size_t gi = 0; gi < w.pickers.size(); gi += 7) {
      const GridCoord goal = w.pickers[gi];
      const HeuristicTable table(w.matrix, goal);
      const auto bfs = finder.DistancesFrom(goal);
      for (std::int64_t i = 0; i < w.matrix.CellCount(); ++i) {
        const GridCoord cell = w.matrix.CoordOf(i);
        const TimeStep d = table.At(cell);
        if (!w.matrix.IsTraversable(cell)) {
          EXPECT_EQ(d, kInfiniteTime)
              << name << " rack cell " << cell << " got finite distance";
          continue;
        }
        const auto ref = bfs[static_cast<std::size_t>(i)];
        if (ref < 0) {
          EXPECT_EQ(d, kInfiniteTime) << name << " cell " << cell;
        } else {
          EXPECT_EQ(d, TimeStep{ref}) << name << " cell " << cell;
        }
      }
    }
  }
}

/// A rack goal is entered as an endpoint only: its own distance is 0, every
/// aisle cell's distance is 1 + the BFS distance to the goal's nearest
/// traversable neighbour, and every *other* rack cell stays infinite.
TEST(HeuristicTableTest, RackGoalEnteredAsEndpointOnly) {
  const layout::Warehouse w = Paper("W-1");
  // rack_access points are aisle cells; pick an actual rack cell as goal.
  GridCoord goal{-1, -1};
  for (std::int64_t i = 0; i < w.matrix.CellCount() && goal.row < 0; ++i) {
    if (!w.matrix.IsTraversable(w.matrix.CoordOf(i))) {
      goal = w.matrix.CoordOf(i);
    }
  }
  ASSERT_GE(goal.row, 0);
  ASSERT_FALSE(w.matrix.IsTraversable(goal));
  const HeuristicTable table(w.matrix, goal);
  EXPECT_EQ(table.At(goal), 0);

  const SpatialPathFinder finder(w.matrix);
  std::vector<std::vector<std::int32_t>> nbr_bfs;
  GridCoord nbrs[4];
  const int cnt = w.matrix.Neighbors(goal, nbrs);
  for (int k = 0; k < cnt; ++k) {
    if (w.matrix.IsTraversable(nbrs[k])) {
      nbr_bfs.push_back(finder.DistancesFrom(nbrs[k]));
    }
  }
  ASSERT_FALSE(nbr_bfs.empty());
  for (std::int64_t i = 0; i < w.matrix.CellCount(); ++i) {
    const GridCoord cell = w.matrix.CoordOf(i);
    if (!w.matrix.IsTraversable(cell)) {
      if (!(cell == goal)) {
        EXPECT_EQ(table.At(cell), kInfiniteTime);
      }
      continue;
    }
    TimeStep ref = kInfiniteTime;
    for (const auto& bfs : nbr_bfs) {
      const auto d = bfs[static_cast<std::size_t>(i)];
      if (d >= 0) ref = std::min(ref, TimeStep{d} + 1);
    }
    EXPECT_EQ(table.At(cell), ref) << "cell " << cell;
  }
}

/// LowerBound must be admissible *and* consistent everywhere: it never
/// exceeds a neighbour's bound plus the step cost.
TEST(HeuristicTableTest, LowerBoundIsConsistentAcrossNeighbours) {
  const layout::Warehouse w = Paper("W-1");
  const HeuristicTable table(w.matrix, w.pickers.front());
  GridCoord nbrs[4];
  for (std::int64_t i = 0; i < w.matrix.CellCount(); ++i) {
    const GridCoord cell = w.matrix.CoordOf(i);
    if (!w.matrix.IsTraversable(cell)) continue;
    const int cnt = w.matrix.Neighbors(cell, nbrs);
    for (int k = 0; k < cnt; ++k) {
      if (!w.matrix.IsTraversable(nbrs[k])) continue;
      EXPECT_LE(table.LowerBound(cell), table.LowerBound(nbrs[k]) + 1)
          << cell << " -> " << nbrs[k];
    }
  }
}

/// Region minima: with a region map, RegionMin(r) is exactly the smallest
/// table distance over the region's cells.
TEST(HeuristicTableTest, RegionMinIsExactMinimumOverRegionCells) {
  const layout::Warehouse w = Paper("W-1");
  // Two regions: left half / right half of the grid, racks unassigned.
  std::vector<std::int32_t> region(
      static_cast<std::size_t>(w.matrix.CellCount()), -1);
  for (std::int64_t i = 0; i < w.matrix.CellCount(); ++i) {
    const GridCoord cell = w.matrix.CoordOf(i);
    if (!w.matrix.IsTraversable(cell)) continue;
    region[static_cast<std::size_t>(i)] =
        cell.col < w.matrix.width() / 2 ? 0 : 1;
  }
  const GridCoord goal = w.pickers.front();
  const HeuristicTable table(w.matrix, goal, &region, 2);
  for (std::int32_t r = 0; r < 2; ++r) {
    TimeStep expected = kInfiniteTime;
    for (std::int64_t i = 0; i < w.matrix.CellCount(); ++i) {
      if (region[static_cast<std::size_t>(i)] != r) continue;
      expected = std::min(expected, table.At(w.matrix.CoordOf(i)));
    }
    EXPECT_EQ(table.RegionMin(r), expected) << "region " << r;
  }
  EXPECT_EQ(table.RegionMin(2), kInfiniteTime);   // out of range
  EXPECT_EQ(table.RegionMin(-1), kInfiniteTime);  // unassigned marker
}

/// Admissibility against real planner output: no committed route can beat
/// the table's lower bound for its own origin/destination pair, even as
/// reservations force detours and waits.
TEST(HeuristicTableTest, NeverExceedsValidRouteCosts) {
  const layout::Warehouse w = Paper("W-1");
  auto planner = baselines::MakePlanner("SAP", w.matrix);
  TimeStep now = 0;
  for (std::size_t i = 0; i + 1 < w.rack_access.size() && i < 24; i += 2) {
    const GridCoord origin = w.rack_access[i];
    const GridCoord destination = w.pickers[i % w.pickers.size()];
    const auto route = planner->PlanRoute(now, origin, destination);
    ASSERT_TRUE(route.has_value());
    const HeuristicTable table(w.matrix, destination);
    // Actual cost from the cell the route departs from; dispatch may delay
    // the start, never shorten the path.
    EXPECT_LE(table.At(origin), route->end_time() - route->start_time())
        << origin << " -> " << destination;
    now += 3;
  }
}

TEST(HeuristicTableCacheTest, HitsAndMissesAreCounted) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTableCache cache(w.matrix);
  const auto a = cache.Acquire(w.pickers[0]);
  const auto b = cache.Acquire(w.pickers[0]);
  const auto c = cache.Acquire(w.pickers[1]);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.evictions, 0);
  EXPECT_EQ(s.tables, 2u);
  EXPECT_EQ(s.bytes, 2 * cache.table_bytes());
}

/// With one shard and a budget of exactly two tables, a third distinct
/// goal evicts the least-recently-used one — and the evicted goal rebuilds
/// (a new miss) while its bit-identical distances keep answers unchanged.
TEST(HeuristicTableCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTableCache::Options options;
  options.shards = 1;
  options.budget_bytes = 2 * HeuristicTable::BytesFor(w.matrix, 0);
  HeuristicTableCache cache(w.matrix, options);

  const GridCoord g0 = w.pickers[0];
  const GridCoord g1 = w.pickers[1];
  const GridCoord g2 = w.pickers[2];
  const auto t0 = cache.Acquire(g0);
  const auto t1 = cache.Acquire(g1);
  (void)cache.Acquire(g0);  // refresh g0: g1 becomes the LRU victim
  const auto t2 = cache.Acquire(g2);
  ASSERT_NE(t2, nullptr);

  auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.tables, 2u);
  EXPECT_LE(s.bytes, options.budget_bytes);

  // g0 survived (it was refreshed), g1 rebuilds from scratch.
  (void)cache.Acquire(g0);
  EXPECT_EQ(cache.stats().misses, 3);
  const auto t1_again = cache.Acquire(g1);
  ASSERT_NE(t1_again, nullptr);
  EXPECT_EQ(cache.stats().misses, 4);
  // The rebuilt table answers exactly like the evicted snapshot (still
  // alive through our shared_ptr).
  for (std::int64_t i = 0; i < w.matrix.CellCount(); i += 37) {
    const GridCoord cell = w.matrix.CoordOf(i);
    EXPECT_EQ(t1->At(cell), t1_again->At(cell));
  }
}

/// A budget too small for even one table deterministically disables the
/// cache: every Acquire answers nullptr (callers fall back to Manhattan).
TEST(HeuristicTableCacheTest, SubTableBudgetAlwaysFallsBackToManhattan) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTableCache::Options options;
  options.shards = 1;
  options.budget_bytes = HeuristicTable::BytesFor(w.matrix, 0) - 1;
  HeuristicTableCache cache(w.matrix, options);
  EXPECT_EQ(cache.Acquire(w.pickers[0]), nullptr);
  EXPECT_EQ(cache.Acquire(w.pickers[1]), nullptr);
  EXPECT_EQ(cache.stats().tables, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

/// Concurrent Acquires of one goal build exactly once: late arrivals block
/// on the publication condition variable and then hit.
TEST(HeuristicTableCacheTest, ConcurrentSameGoalAcquiresBuildOnce) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTableCache cache(w.matrix);
  const GridCoord goal = w.pickers.front();
  constexpr int kThreads = 4;
  std::vector<std::shared_ptr<const HeuristicTable>> acquired(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back(
        [&, i] { acquired[static_cast<std::size_t>(i)] = cache.Acquire(goal); });
  }
  for (auto& t : workers) t.join();
  for (const auto& table : acquired) {
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table.get(), acquired.front().get());
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, kThreads - 1);
  EXPECT_EQ(s.tables, 1u);
}

TEST(HeuristicTableCacheTest, ClearDropsTablesButKeepsSnapshotsAlive) {
  const layout::Warehouse w = Paper("W-1");
  HeuristicTableCache cache(w.matrix);
  const auto snapshot = cache.Acquire(w.pickers[0]);
  ASSERT_NE(snapshot, nullptr);
  cache.Clear();
  EXPECT_EQ(cache.stats().tables, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  // The snapshot still answers — eviction only dropped the cache's ref.
  EXPECT_EQ(snapshot->At(w.pickers[0]), 0);
  // Re-acquiring after Clear is a rebuild.
  EXPECT_NE(cache.Acquire(w.pickers[0]), nullptr);
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(HeuristicModeTest, ParseRoundTrips) {
  EXPECT_EQ(ParseHeuristicMode("manhattan"), HeuristicMode::kManhattan);
  EXPECT_EQ(ParseHeuristicMode("table"), HeuristicMode::kTable);
  EXPECT_FALSE(ParseHeuristicMode("euclid").has_value());
  EXPECT_EQ(ToString(HeuristicMode::kManhattan), "manhattan");
  EXPECT_EQ(ToString(HeuristicMode::kTable), "table");
}

}  // namespace
}  // namespace carp::core
