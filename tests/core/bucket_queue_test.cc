#include "core/bucket_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "common/rng.h"

namespace carp::core {
namespace {

/// Reference model of the ordering contract: min f, then min h, then FIFO
/// (push serial). Kept as a plain vector with linear-scan pops so its
/// correctness is obvious by inspection.
struct Model {
  struct Entry {
    std::int64_t f, h, serial, payload;
  };
  std::vector<Entry> entries;
  std::int64_t next_serial = 0;

  void Push(std::int64_t f, std::int64_t h, std::int64_t payload) {
    entries.push_back({f, h, next_serial++, payload});
  }
  Entry Pop() {
    auto best = entries.begin();
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (std::tie(it->f, it->h, it->serial) <
          std::tie(best->f, best->h, best->serial)) {
        best = it;
      }
    }
    Entry e = *best;
    entries.erase(best);
    return e;
  }
};

TEST(BucketQueueTest, PopsAscendingFThenHThenFifo) {
  BucketQueue<int> q;
  // Same f, different h; same (f, h) must come out in push order.
  q.Push(5, 2, 0);
  q.Push(3, 7, 1);
  q.Push(5, 0, 2);
  q.Push(3, 7, 3);
  q.Push(4, 1, 4);
  ASSERT_EQ(q.size(), 5u);

  auto a = q.Pop();
  EXPECT_EQ(a.f, 3);
  EXPECT_EQ(a.payload, 1);
  auto b = q.Pop();
  EXPECT_EQ(b.f, 3);
  EXPECT_EQ(b.payload, 3);  // FIFO among equal (f, h)
  EXPECT_EQ(q.Pop().payload, 4);
  auto d = q.Pop();
  EXPECT_EQ(d.f, 5);
  EXPECT_EQ(d.h, 0);  // within one f, ascending h
  EXPECT_EQ(d.payload, 2);
  EXPECT_EQ(q.Pop().payload, 0);
  EXPECT_TRUE(q.empty());
}

/// Weighted searches push keys *below* the current minimum (SRP's inflated
/// heuristic is not monotone); the minimum tracker must follow.
TEST(BucketQueueTest, AcceptsPushBelowCurrentMinimum) {
  BucketQueue<int> q;
  q.Push(10, 0, 0);
  EXPECT_EQ(q.Pop().f, 10);
  q.Push(20, 0, 1);
  q.Push(4, 0, 2);  // below the last popped f and the live minimum
  EXPECT_EQ(q.Pop().payload, 2);
  EXPECT_EQ(q.Pop().payload, 1);
}

TEST(BucketQueueTest, NegativeKeysAreSafe) {
  BucketQueue<int> q;
  q.Push(-3, 0, 0);
  q.Push(2, 0, 1);
  q.Push(-7, 1, 2);
  EXPECT_EQ(q.Pop().payload, 2);
  EXPECT_EQ(q.Pop().payload, 0);
  EXPECT_EQ(q.Pop().payload, 1);
}

/// A key span wider than the initial ring forces growth mid-stream; the
/// ordering contract (including per-cell FIFO) must survive the re-push.
TEST(BucketQueueTest, GrowthPreservesOrdering) {
  BucketQueue<int> q;
  Model model;
  int payload = 0;
  for (std::int64_t f : {0, 700, 0, 1500, 3, 700, 2900, 3, 3}) {
    q.Push(f, 0, payload);
    model.Push(f, 0, payload);
    ++payload;
  }
  while (!q.empty()) {
    const auto got = q.Pop();
    const auto want = model.Pop();
    EXPECT_EQ(got.f, want.f);
    EXPECT_EQ(got.payload, want.payload);
  }
  EXPECT_TRUE(model.entries.empty());
}

/// Randomised differential against the reference model, with interleaved
/// pushes and pops, duplicate keys, and an h dial wide enough to exercise
/// the second level.
TEST(BucketQueueTest, RandomizedMatchesReferenceModel) {
  Rng rng(1234);
  BucketQueue<std::int64_t> q;
  Model model;
  std::int64_t payload = 0;
  for (int round = 0; round < 4000; ++round) {
    const bool push = model.entries.empty() || rng.UniformU32(100) < 60;
    if (push) {
      const std::int64_t f = rng.UniformInt(-20, 300);
      const std::int64_t h = rng.UniformInt(0, 12);
      q.Push(f, h, payload);
      model.Push(f, h, payload);
      ++payload;
    } else {
      ASSERT_FALSE(q.empty());
      const auto got = q.Pop();
      const auto want = model.Pop();
      ASSERT_EQ(got.f, want.f) << "round " << round;
      ASSERT_EQ(got.h, want.h) << "round " << round;
      ASSERT_EQ(got.payload, want.payload) << "round " << round;
    }
    ASSERT_EQ(q.size(), model.entries.size());
  }
  while (!q.empty()) {
    EXPECT_EQ(q.Pop().payload, model.Pop().payload);
  }
}

/// Clear() keeps the ring and cell allocations — the planners' scratch
/// gauges rely on the retained capacity being stable across queries.
TEST(BucketQueueTest, ClearRetainsCapacityAndStaysReusable) {
  BucketQueue<int> q;
  for (int i = 0; i < 200; ++i) q.Push(i % 17, i % 3, i);
  const std::size_t retained = q.RetainedSlots();
  EXPECT_GT(retained, 0u);
  q.Clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.RetainedSlots(), retained);

  // Identical reuse allocates nothing new.
  for (int i = 0; i < 200; ++i) q.Push(i % 17, i % 3, i);
  EXPECT_EQ(q.RetainedSlots(), retained);
  int prev_f = -1;
  while (!q.empty()) {
    const auto item = q.Pop();
    EXPECT_GE(item.f, prev_f);
    prev_f = static_cast<int>(item.f);
  }
}

}  // namespace
}  // namespace carp::core
