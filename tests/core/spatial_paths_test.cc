#include "core/spatial_paths.h"

#include <gtest/gtest.h>

namespace carp::core {
namespace {

WarehouseMatrix OpenGrid() { return WarehouseMatrix(6, 8); }

WarehouseMatrix WallGrid() {
  // A vertical rack wall with one gap at row 4.
  return WarehouseMatrix::FromAscii(
      "....#....\n"
      "....#....\n"
      "....#....\n"
      "....#....\n"
      ".........\n"
      "....#....\n");
}

TEST(SpatialPathFinderTest, StraightLineOnOpenGrid) {
  WarehouseMatrix m = OpenGrid();
  SpatialPathFinder finder(m);
  auto path = finder.ShortestPath({0, 0}, {0, 5});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 6u);
  EXPECT_EQ(path->front(), (GridCoord{0, 0}));
  EXPECT_EQ(path->back(), (GridCoord{0, 5}));
}

TEST(SpatialPathFinderTest, PathLengthMatchesManhattanWhenUnobstructed) {
  WarehouseMatrix m = OpenGrid();
  SpatialPathFinder finder(m);
  auto path = finder.ShortestPath({1, 1}, {4, 6});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(static_cast<std::int64_t>(path->size()),
            ManhattanDistance({1, 1}, {4, 6}) + 1);
}

TEST(SpatialPathFinderTest, DetoursAroundWall) {
  WarehouseMatrix m = WallGrid();
  SpatialPathFinder finder(m);
  auto path = finder.ShortestPath({0, 0}, {0, 8});
  ASSERT_TRUE(path.has_value());
  // Must route through the gap at row 4: 4 down + 8 across + 4 up = 16
  // moves, 17 cells.
  EXPECT_EQ(path->size(), 17u);
  for (std::size_t i = 1; i < path->size(); ++i) {
    EXPECT_EQ(ManhattanDistance((*path)[i - 1], (*path)[i]), 1);
    EXPECT_TRUE(m.IsTraversable((*path)[i]));
  }
}

TEST(SpatialPathFinderTest, TrivialSameCellPath) {
  WarehouseMatrix m = OpenGrid();
  SpatialPathFinder finder(m);
  auto path = finder.ShortestPath({2, 2}, {2, 2});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

TEST(SpatialPathFinderTest, UnreachableReturnsNullopt) {
  WarehouseMatrix m = WarehouseMatrix::FromAscii(
      ".#.\n"
      "###\n"
      ".#.\n");
  SpatialPathFinder finder(m);
  EXPECT_FALSE(finder.ShortestPath({0, 0}, {2, 2}).has_value());
}

TEST(SpatialPathFinderTest, RackEndpointsRequireFlag) {
  WarehouseMatrix m = OpenGrid();
  m.SetRack({2, 3}, true);
  SpatialPathFinder strict(m);
  EXPECT_FALSE(strict.ShortestPath({0, 0}, {2, 3}).has_value());
  SpatialPathFinder relaxed(m, /*allow_endpoint_racks=*/true);
  auto path = relaxed.ShortestPath({0, 0}, {2, 3});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->back(), (GridCoord{2, 3}));
  // All intermediate cells must still be aisles.
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    EXPECT_TRUE(m.IsTraversable((*path)[i]));
  }
}

TEST(SpatialPathFinderTest, DistancesFromBfs) {
  WarehouseMatrix m = WallGrid();
  SpatialPathFinder finder(m);
  auto dist = finder.DistancesFrom({0, 0});
  EXPECT_EQ(dist[static_cast<std::size_t>(m.Index({0, 0}))], 0);
  EXPECT_EQ(dist[static_cast<std::size_t>(m.Index({0, 3}))], 3);
  EXPECT_EQ(dist[static_cast<std::size_t>(m.Index({0, 8}))], 16);
  EXPECT_EQ(dist[static_cast<std::size_t>(m.Index({0, 4}))], -1);  // rack
}

TEST(SpatialPathFinderTest, AislesConnectedDetection) {
  EXPECT_TRUE(SpatialPathFinder::AislesConnected(WallGrid()));
  WarehouseMatrix split = WarehouseMatrix::FromAscii(
      ".#.\n"
      ".#.\n"
      ".#.\n");
  EXPECT_FALSE(SpatialPathFinder::AislesConnected(split));
}

TEST(SpatialPathFinderTest, OutOfBoundsEndpoints) {
  WarehouseMatrix m = OpenGrid();
  SpatialPathFinder finder(m);
  EXPECT_FALSE(finder.ShortestPath({-1, 0}, {0, 0}).has_value());
  EXPECT_FALSE(finder.ShortestPath({0, 0}, {99, 0}).has_value());
}

}  // namespace
}  // namespace carp::core
