#include "workload/scenario.h"

#include <gtest/gtest.h>

namespace carp::workload {
namespace {

TEST(ScenarioTest, PaperTaskCountsMatchTableTwo) {
  Scenario w1 = PaperScenario("W-1");
  EXPECT_EQ(w1.daily_tasks,
            (std::vector<std::int64_t>{45'000, 46'600, 27'700, 33'100,
                                       33'400}));
  Scenario w2 = PaperScenario("W-2");
  EXPECT_EQ(w2.daily_tasks,
            (std::vector<std::int64_t>{41'000, 45'900, 34'300, 79'900,
                                       63'500}));
  Scenario w3 = PaperScenario("W-3");
  EXPECT_EQ(w3.daily_tasks,
            (std::vector<std::int64_t>{34'400, 35'200, 26'500, 134'600,
                                       103'900}));
}

TEST(ScenarioTest, LayoutsMatchScenarioNames) {
  EXPECT_EQ(PaperScenario("W-1").layout.name, "W-1");
  EXPECT_EQ(PaperScenario("W-2").layout.height, 240);
  EXPECT_EQ(PaperScenario("W-3").layout.width, 278);
}

TEST(ScenarioTest, ScalingRoundsDownButNeverToZero) {
  Scenario s = PaperScenario("W-1");
  Scenario scaled = ScaledScenario(s, 0.01);
  ASSERT_EQ(scaled.daily_tasks.size(), 5u);
  EXPECT_EQ(scaled.daily_tasks[0], 450);
  EXPECT_EQ(scaled.daily_tasks[2], 277);

  Scenario tiny = ScaledScenario(s, 1e-9);
  for (auto n : tiny.daily_tasks) EXPECT_EQ(n, 1);
}

TEST(ScenarioTest, FullScaleIsIdentity) {
  Scenario s = PaperScenario("W-2");
  EXPECT_EQ(ScaledScenario(s, 1.0).daily_tasks, s.daily_tasks);
}

using ScenarioDeathTest = ::testing::Test;

TEST(ScenarioDeathTest, UnknownScenarioDies) {
  EXPECT_DEATH(PaperScenario("W-9"), "unknown paper scenario");
}

TEST(ScenarioDeathTest, RejectsBadScale) {
  Scenario s = PaperScenario("W-1");
  EXPECT_DEATH(ScaledScenario(s, 0.0), "scale");
  EXPECT_DEATH(ScaledScenario(s, 1.5), "scale");
}

}  // namespace
}  // namespace carp::workload
