#include "workload/arrival_profile.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace carp::workload {
namespace {

TEST(ArrivalProfileTest, SamplesSortedAndInRange) {
  Rng rng(1);
  ArrivalProfile profile = ArrivalProfile::DoubleSurge();
  auto arrivals = profile.SampleArrivals(5000, 43'200, rng);
  ASSERT_EQ(arrivals.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  EXPECT_GE(arrivals.front(), 0);
  EXPECT_LT(arrivals.back(), 43'200);
}

TEST(ArrivalProfileTest, UniformProfileCoversDayEvenly) {
  Rng rng(2);
  ArrivalProfile profile = ArrivalProfile::Uniform(4);
  auto arrivals = profile.SampleArrivals(8000, 4000, rng);
  int quarters[4] = {0, 0, 0, 0};
  for (TimeStep t : arrivals) ++quarters[t / 1000];
  for (int q : quarters) {
    EXPECT_GT(q, 1700);
    EXPECT_LT(q, 2300);
  }
}

TEST(ArrivalProfileTest, DoubleSurgeHasMorningAndNoonPeaks) {
  Rng rng(3);
  ArrivalProfile profile = ArrivalProfile::DoubleSurge();
  const std::size_t slots = profile.slot_weights().size();
  auto arrivals = profile.SampleArrivals(24000, 12000, rng);
  std::vector<int> hist(slots, 0);
  for (TimeStep t : arrivals) {
    ++hist[static_cast<std::size_t>(t) * slots / 12000];
  }
  // Slot 2 (morning surge) and slot 6 (noon surge) dominate their
  // neighbourhoods, matching the paper's Sec. VIII-B observation.
  EXPECT_GT(hist[2], hist[0]);
  EXPECT_GT(hist[2], hist[4]);
  EXPECT_GT(hist[6], hist[5]);
  EXPECT_GT(hist[6], hist[9]);
}

TEST(ArrivalProfileTest, ZeroCountYieldsEmpty) {
  Rng rng(4);
  EXPECT_TRUE(
      ArrivalProfile::Uniform().SampleArrivals(0, 100, rng).empty());
}

TEST(ArrivalProfileTest, DeterministicGivenRngSeed) {
  ArrivalProfile profile = ArrivalProfile::DoubleSurge();
  Rng a(9), b(9);
  EXPECT_EQ(profile.SampleArrivals(100, 1000, a),
            profile.SampleArrivals(100, 1000, b));
}

using ArrivalProfileDeathTest = ::testing::Test;

TEST(ArrivalProfileDeathTest, RejectsEmptyProfile) {
  EXPECT_DEATH(ArrivalProfile({}), "at least one slot");
}

TEST(ArrivalProfileDeathTest, RejectsNegativeWeight) {
  EXPECT_DEATH(ArrivalProfile({1.0, -0.5}), "negative");
}

TEST(ArrivalProfileDeathTest, RejectsAllZeroWeights) {
  EXPECT_DEATH(ArrivalProfile({0.0, 0.0}), "positive weight");
}

}  // namespace
}  // namespace carp::workload
