#include "workload/request_stream.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "layout/layout_generator.h"
#include "layout/presets.h"
#include "workload/task_generator.h"

namespace carp::workload {
namespace {

class RequestStreamTest : public ::testing::Test {
 protected:
  layout::Warehouse warehouse_ =
      layout::GenerateWarehouse(layout::PresetTiny());

  std::vector<DeliveryTask> MakeTasks(int n) {
    TaskGeneratorOptions opts;
    opts.task_count = n;
    opts.day_length = 1000;
    return GenerateTasks(warehouse_, ArrivalProfile::Uniform(), opts);
  }
};

TEST_F(RequestStreamTest, FlattenProducesThreeQueriesPerTask) {
  auto tasks = MakeTasks(40);
  auto queries = FlattenToQueries(warehouse_, tasks);
  EXPECT_EQ(queries.size(), 120u);
}

TEST_F(RequestStreamTest, FlattenedQueriesSortedByEmergence) {
  auto queries = FlattenToQueries(warehouse_, MakeTasks(50));
  EXPECT_TRUE(std::is_sorted(queries.begin(), queries.end(),
                             [](const auto& a, const auto& b) {
                               return a.emergence < b.emergence;
                             }));
}

TEST_F(RequestStreamTest, StagesChainSpatially) {
  auto tasks = MakeTasks(10);
  auto queries = FlattenToQueries(warehouse_, tasks);
  for (const auto& task : tasks) {
    std::vector<PlanningQuery> stages;
    for (const auto& q : queries) {
      if (q.task_id == task.id) stages.push_back(q);
    }
    ASSERT_EQ(stages.size(), 3u);
    std::sort(stages.begin(), stages.end(),
              [](const auto& a, const auto& b) {
                return static_cast<int>(a.stage) < static_cast<int>(b.stage);
              });
    EXPECT_EQ(stages[0].stage, QueryStage::kPickup);
    EXPECT_EQ(stages[0].destination, stages[1].origin);
    EXPECT_EQ(stages[1].destination, stages[2].origin);
    // Return goes back to the rack access cell.
    EXPECT_EQ(stages[2].destination,
              warehouse_.rack_access[task.rack_index]);
    EXPECT_LT(stages[0].emergence, stages[1].emergence);
    EXPECT_LT(stages[1].emergence, stages[2].emergence);
  }
}

TEST_F(RequestStreamTest, EndpointsAreTraversable) {
  auto queries = FlattenToQueries(warehouse_, MakeTasks(30));
  for (const auto& q : queries) {
    EXPECT_TRUE(warehouse_.matrix.IsTraversable(q.origin)) << q;
    EXPECT_TRUE(warehouse_.matrix.IsTraversable(q.destination)) << q;
  }
}

TEST_F(RequestStreamTest, PickupQueriesOnlyPickups) {
  auto tasks = MakeTasks(25);
  auto queries = PickupQueries(warehouse_, tasks);
  ASSERT_EQ(queries.size(), tasks.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].stage, QueryStage::kPickup);
    EXPECT_EQ(queries[i].emergence, tasks[i].arrival);
    EXPECT_EQ(queries[i].destination,
              warehouse_.rack_access[tasks[i].rack_index]);
  }
}

TEST_F(RequestStreamTest, RobotHomesRoundRobin) {
  auto tasks = MakeTasks(static_cast<int>(warehouse_.robot_homes.size()) + 3);
  auto queries = PickupQueries(warehouse_, tasks);
  const std::size_t n = warehouse_.robot_homes.size();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].origin, warehouse_.robot_homes[i % n]);
  }
}

}  // namespace
}  // namespace carp::workload
