#include "workload/task_generator.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "layout/layout_generator.h"
#include "layout/presets.h"

namespace carp::workload {
namespace {

class TaskGeneratorTest : public ::testing::Test {
 protected:
  layout::Warehouse warehouse_ =
      layout::GenerateWarehouse(layout::PresetTiny());
};

TEST_F(TaskGeneratorTest, GeneratesRequestedCount) {
  TaskGeneratorOptions opts;
  opts.task_count = 500;
  auto tasks =
      GenerateTasks(warehouse_, ArrivalProfile::DoubleSurge(), opts);
  EXPECT_EQ(tasks.size(), 500u);
}

TEST_F(TaskGeneratorTest, IdsDenseAndArrivalsSorted) {
  TaskGeneratorOptions opts;
  opts.task_count = 200;
  auto tasks = GenerateTasks(warehouse_, ArrivalProfile::Uniform(), opts);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].id, static_cast<std::int64_t>(i));
    if (i > 0) {
      EXPECT_GE(tasks[i].arrival, tasks[i - 1].arrival);
    }
  }
}

TEST_F(TaskGeneratorTest, IndicesWithinBounds) {
  TaskGeneratorOptions opts;
  opts.task_count = 300;
  auto tasks = GenerateTasks(warehouse_, ArrivalProfile::Uniform(), opts);
  for (const auto& t : tasks) {
    EXPECT_LT(t.rack_index, warehouse_.racks.size());
    EXPECT_LT(t.picker_index, warehouse_.pickers.size());
  }
}

TEST_F(TaskGeneratorTest, DeterministicForSeed) {
  TaskGeneratorOptions opts;
  opts.task_count = 100;
  opts.seed = 77;
  auto a = GenerateTasks(warehouse_, ArrivalProfile::Uniform(), opts);
  auto b = GenerateTasks(warehouse_, ArrivalProfile::Uniform(), opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].rack_index, b[i].rack_index);
    EXPECT_EQ(a[i].picker_index, b[i].picker_index);
  }
}

TEST_F(TaskGeneratorTest, SeedsChangeTheWorkload) {
  TaskGeneratorOptions a_opts, b_opts;
  a_opts.task_count = b_opts.task_count = 100;
  a_opts.seed = 1;
  b_opts.seed = 2;
  auto a = GenerateTasks(warehouse_, ArrivalProfile::Uniform(), a_opts);
  auto b = GenerateTasks(warehouse_, ArrivalProfile::Uniform(), b_opts);
  int diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].rack_index != b[i].rack_index) ++diff;
  }
  EXPECT_GT(diff, 50);
}

TEST_F(TaskGeneratorTest, ZipfSkewConcentratesDemand) {
  TaskGeneratorOptions uniform, zipf;
  uniform.task_count = zipf.task_count = 4000;
  zipf.rack_zipf_s = 1.2;

  auto count_top_decile = [&](const std::vector<DeliveryTask>& tasks) {
    const std::size_t cutoff = warehouse_.racks.size() / 10;
    return std::count_if(tasks.begin(), tasks.end(), [&](const auto& t) {
      return t.rack_index < cutoff;
    });
  };
  auto u = GenerateTasks(warehouse_, ArrivalProfile::Uniform(), uniform);
  auto z = GenerateTasks(warehouse_, ArrivalProfile::Uniform(), zipf);
  EXPECT_GT(count_top_decile(z), 2 * count_top_decile(u));
}

TEST_F(TaskGeneratorTest, ZeroTasksOk) {
  TaskGeneratorOptions opts;
  opts.task_count = 0;
  EXPECT_TRUE(
      GenerateTasks(warehouse_, ArrivalProfile::Uniform(), opts).empty());
}

}  // namespace
}  // namespace carp::workload
